"""Deterministic (nominal) static timing analysis.

Arrival times are propagated forward through the levelized circuit using the
nominal gate delays from the library delay model; required times are
propagated backward from a clock period (or from the worst arrival time when
no constraint is given); slack = required - arrival.  The critical path is
the chain of gates with the smallest slack — the classic WNS path the paper
generalises into the WNSS path.

``DeterministicSTA(vectorized=True)`` runs the forward pass as a levelized
array program over the circuit's compiled IR (:meth:`Circuit.compiled()
<repro.netlist.circuit.Circuit.compiled>`): one ``np.maximum`` fold per
input position per logic level.  ``max`` over floats and float addition are
exact, so the vectorized arrivals are bit-identical to the scalar walk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.library.delay_model import BaseDelayModel
from repro.netlist.circuit import Circuit
from repro.obs import METRICS, span


@dataclass
class DeterministicTimingReport:
    """Result of one deterministic STA run."""

    arrival: Dict[str, float]
    required: Dict[str, float]
    slack: Dict[str, float]
    gate_delays: Dict[str, float]
    critical_path: List[str]
    worst_output: str
    worst_arrival: float
    clock_period: float

    @property
    def wns(self) -> float:
        """Worst negative slack (can be positive when the circuit meets timing)."""
        return self.clock_period - self.worst_arrival

    def path_delay(self) -> float:
        """Sum of gate delays along the critical path."""
        return sum(self.gate_delays[g] for g in self.critical_path)


class DeterministicSTA:
    """Classic nominal static timing analysis over a combinational circuit.

    Parameters
    ----------
    delay_model:
        Library delay model giving nominal gate delays under load.
    vectorized:
        When true, the forward pass runs levelized over the compiled IR
        instead of gate by gate.  Results are bit-identical.
    """

    def __init__(
        self, delay_model: BaseDelayModel, vectorized: bool = False
    ) -> None:
        self.delay_model = delay_model
        self.vectorized = vectorized

    # ------------------------------------------------------------------
    def arrival_times(self, circuit: Circuit) -> Tuple[Dict[str, float], Dict[str, float]]:
        """Forward propagation.

        Returns ``(net_arrival, gate_delays)``: the arrival time at every
        net and the nominal delay of every gate.  Primary inputs arrive at
        time 0.
        """
        if self.vectorized:
            METRICS.counter("dsta.runs.levelized")
            with span("dsta.arrival_times", path="levelized") as sp:
                arrival, gate_delays = self._arrival_times_vectorized(circuit)
                sp.set(gates=len(gate_delays))
            return arrival, gate_delays
        METRICS.counter("dsta.runs.scalar")
        with span("dsta.arrival_times", path="scalar") as sp:
            arrival = {net: 0.0 for net in circuit.primary_inputs}
            gate_delays: Dict[str, float] = {}
            for gate in circuit:
                delay = self.delay_model.gate_delay(circuit, gate)
                gate_delays[gate.name] = delay
                input_arrival = max(arrival.get(net, 0.0) for net in gate.inputs)
                arrival[gate.output] = input_arrival + delay
            sp.set(gates=len(gate_delays))
        return arrival, gate_delays

    # ------------------------------------------------------------------
    def _arrival_times_vectorized(
        self, circuit: Circuit
    ) -> Tuple[Dict[str, float], Dict[str, float]]:
        plan = circuit.compiled()
        arr = np.zeros(plan.num_nets)
        gate_delays: Dict[str, float] = {}
        for block in plan.levels:
            delays = np.empty(len(block.names))
            for row, name in enumerate(block.names):
                delay = self.delay_model.gate_delay(circuit, circuit.gate(name))
                gate_delays[name] = delay
                delays[row] = delay
            in_ids, in_mask = block.in_slots, block.in_mask
            worst = arr[in_ids[:, 0]]
            for col in range(1, in_ids.shape[1]):
                mask = in_mask[:, col]
                worst = np.where(
                    mask, np.maximum(worst, arr[in_ids[:, col]]), worst
                )
            arr[block.out_slots] = worst + delays
        # Same visibility as the scalar walk: primary inputs and gate
        # outputs; floating nets stay out of the map (they read as 0.0
        # through ``.get`` just like the scalar path).
        arrival = {
            net: float(arr[idx])
            for net, idx in plan.net_index.items()
            if net not in plan.floating
        }
        return arrival, gate_delays

    def analyze(
        self, circuit: Circuit, clock_period: Optional[float] = None
    ) -> DeterministicTimingReport:
        """Run full STA and return a :class:`DeterministicTimingReport`.

        When ``clock_period`` is omitted the constraint is set to the worst
        primary-output arrival time, making the worst slack exactly zero.
        """
        arrival, gate_delays = self.arrival_times(circuit)

        outputs = circuit.primary_outputs
        if not outputs:
            raise ValueError(f"circuit {circuit.name!r} has no primary outputs")
        worst_output = max(outputs, key=lambda net: arrival.get(net, 0.0))
        worst_arrival = arrival.get(worst_output, 0.0)
        period = clock_period if clock_period is not None else worst_arrival

        # Backward propagation of required times.
        required: Dict[str, float] = {}
        for net in outputs:
            required[net] = period
        for gate in reversed(list(circuit)):
            out_required = required.get(gate.output)
            if out_required is None:
                # Dangling gate output: unconstrained.
                out_required = period
                required[gate.output] = out_required
            input_required = out_required - gate_delays[gate.name]
            for net in gate.inputs:
                previous = required.get(net)
                if previous is None or input_required < previous:
                    required[net] = input_required

        slack = {
            net: required.get(net, period) - arr for net, arr in arrival.items()
        }

        critical_path = self._trace_critical_path(circuit, arrival, gate_delays, worst_output)
        return DeterministicTimingReport(
            arrival=arrival,
            required=required,
            slack=slack,
            gate_delays=gate_delays,
            critical_path=critical_path,
            worst_output=worst_output,
            worst_arrival=worst_arrival,
            clock_period=period,
        )

    # ------------------------------------------------------------------
    def _trace_critical_path(
        self,
        circuit: Circuit,
        arrival: Dict[str, float],
        gate_delays: Dict[str, float],
        worst_output: str,
    ) -> List[str]:
        """Walk back from the worst output picking the latest-arriving input."""
        path: List[str] = []
        gate = circuit.driver_of(worst_output)
        while gate is not None:
            path.append(gate.name)
            worst_net = max(gate.inputs, key=lambda net: arrival.get(net, 0.0))
            gate = circuit.driver_of(worst_net)
        path.reverse()
        return path

    def critical_path(self, circuit: Circuit) -> List[str]:
        """Gate names along the nominal critical (WNS) path, inputs first."""
        return self.analyze(circuit).critical_path

    def max_delay(self, circuit: Circuit) -> float:
        """Nominal delay of the longest path (worst primary-output arrival)."""
        arrival, _ = self.arrival_times(circuit)
        return max(arrival.get(net, 0.0) for net in circuit.primary_outputs)
