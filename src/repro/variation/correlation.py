"""Optional spatial-correlation overlay for gate delay variation.

The paper's inner loop (FASSTA) assumes independent gate delays, while the
outer loop "can track correlations due to reconvergent paths using Principal
Component Analysis [Chang & Sapatnekar, ICCAD 2003] or other methods".  This
module provides a light-weight grid-based PCA-style model so the outer
engine and the Monte-Carlo golden model can include spatially correlated
variation when desired:

* the die is divided into an ``n x n`` grid,
* each grid cell gets a global Gaussian factor,
* a gate placed in cell (i, j) splits its *proportional* sigma into a
  correlated part (shared factor of its cell, with neighbouring cells
  partially correlated through overlapping parent factors, quad-tree style)
  and an independent residual.

Gates are assigned to grid cells deterministically by hashing their names,
standing in for placement information the pre-layout flow does not have.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np


@dataclass(frozen=True)
class GridAssignment:
    """Placement of a gate onto the correlation grid."""

    row: int
    col: int


class SpatialCorrelationModel:
    """Quad-tree style spatial correlation over an ``n x n`` grid.

    Parameters
    ----------
    grid_size:
        Number of rows/columns of the top-level grid.
    correlated_fraction:
        Fraction (0..1) of each gate's proportional variance that is
        spatially correlated; the rest stays independent.
    levels:
        Number of quad-tree levels.  Level 0 is one die-wide factor; each
        further level quadruples the number of factors.
    """

    def __init__(
        self,
        grid_size: int = 4,
        correlated_fraction: float = 0.5,
        levels: int = 3,
    ) -> None:
        if grid_size < 1:
            raise ValueError("grid_size must be >= 1")
        if not 0.0 <= correlated_fraction <= 1.0:
            raise ValueError("correlated_fraction must be in [0, 1]")
        if levels < 1:
            raise ValueError("levels must be >= 1")
        self.grid_size = grid_size
        self.correlated_fraction = correlated_fraction
        self.levels = levels

    # ------------------------------------------------------------------
    def assign(self, gate_name: str) -> GridAssignment:
        """Deterministically place ``gate_name`` on the grid."""
        digest = hashlib.sha256(gate_name.encode("utf-8")).digest()
        row = digest[0] % self.grid_size
        col = digest[1] % self.grid_size
        return GridAssignment(row=row, col=col)

    def factor_indices(self, assignment: GridAssignment) -> List[Tuple[int, int, int]]:
        """Quad-tree factor coordinates (level, row, col) covering a grid cell."""
        factors = []
        for level in range(self.levels):
            cells = min(self.grid_size, 2 ** level)
            row = assignment.row * cells // self.grid_size
            col = assignment.col * cells // self.grid_size
            factors.append((level, row, col))
        return factors

    def num_factors(self) -> int:
        """Total number of independent global factors in the model."""
        total = 0
        for level in range(self.levels):
            cells = min(self.grid_size, 2 ** level)
            total += cells * cells
        return total

    # ------------------------------------------------------------------
    def correlation_between(self, gate_a: str, gate_b: str) -> float:
        """Correlation coefficient of the *proportional* components of two gates."""
        if gate_a == gate_b:
            return 1.0
        fa = set(self.factor_indices(self.assign(gate_a)))
        fb = set(self.factor_indices(self.assign(gate_b)))
        shared = len(fa & fb)
        return self.correlated_fraction * shared / self.levels

    def factor_order(self) -> List[Tuple[int, int, int]]:
        """All factor coordinates in the order :meth:`sample_factors` draws them.

        Level-ascending, row-major within each level — the flattened layout of
        :meth:`sample_factor_array` columns.
        """
        order: List[Tuple[int, int, int]] = []
        for level in range(self.levels):
            cells = min(self.grid_size, 2 ** level)
            for row in range(cells):
                for col in range(cells):
                    order.append((level, row, col))
        return order

    def sample_factors(self, rng: np.random.Generator) -> Dict[Tuple[int, int, int], float]:
        """Draw one sample of all global factors (each standard normal)."""
        samples: Dict[Tuple[int, int, int], float] = {}
        for level in range(self.levels):
            cells = min(self.grid_size, 2 ** level)
            values = rng.standard_normal((cells, cells))
            for row in range(cells):
                for col in range(cells):
                    samples[(level, row, col)] = float(values[row, col])
        return samples

    def sample_factor_array(
        self, rng: np.random.Generator, num_samples: int
    ) -> np.ndarray:
        """Draw all factors for ``num_samples`` samples in one call.

        Returns a ``(num_samples, num_factors)`` array whose columns follow
        :meth:`factor_order`.  The generator stream is consumed in exactly the
        same element order as ``num_samples`` successive :meth:`sample_factors`
        calls, so for a given seed the two paths yield bitwise-identical
        factor values.
        """
        return rng.standard_normal((num_samples, self.num_factors()))

    def factor_weights(self, gate_names: List[str]) -> np.ndarray:
        """0/1 membership matrix mapping factors to gates.

        Shape ``(num_factors, num_gates)``; column ``j`` has a 1 at every
        factor of ``gate_names[j]``'s quad-tree stack.
        """
        column = {idx: j for j, idx in enumerate(self.factor_order())}
        weights = np.zeros((self.num_factors(), len(gate_names)))
        for j, name in enumerate(gate_names):
            for idx in self.factor_indices(self.assign(name)):
                weights[column[idx], j] = 1.0
        return weights

    def correlated_components(
        self, gate_names: List[str], factor_array: np.ndarray
    ) -> np.ndarray:
        """Standard-normal correlated disturbances for many gates and samples.

        ``factor_array`` is a ``(num_samples, num_factors)`` draw from
        :meth:`sample_factor_array`; the result is ``(num_samples, num_gates)``
        with column ``j`` equal to :meth:`correlated_component` of
        ``gate_names[j]`` evaluated per sample.  The factor sum is one matmul
        against the 0/1 membership matrix: the products are exact and the
        zero terms are additive identities, so on mainstream BLAS builds
        (which reduce the tiny K dimension in order) this reproduces the
        scalar path's left-to-right summation bit-for-bit — the equivalence
        is pinned by ``tests/montecarlo/test_mc.py``, which will flag any
        platform whose GEMM reassociates the reduction.
        """
        if factor_array.ndim != 2 or factor_array.shape[1] != self.num_factors():
            raise ValueError(
                f"factor_array must have shape (num_samples, {self.num_factors()})"
            )
        weights = self.factor_weights(gate_names)
        return (factor_array @ weights) / np.sqrt(self.levels)

    def correlated_component(
        self,
        gate_name: str,
        factor_samples: Dict[Tuple[int, int, int], float],
    ) -> float:
        """Standard-normal correlated disturbance for ``gate_name`` given factor samples.

        The disturbance is the average of the gate's quad-tree factors, scaled
        so its variance is 1 (each factor is standard normal and independent).
        """
        indices = self.factor_indices(self.assign(gate_name))
        total = sum(factor_samples[idx] for idx in indices)
        return total / np.sqrt(len(indices))

    def split_sigma(self, sigma_prop: float) -> Tuple[float, float]:
        """Split a proportional sigma into (correlated, independent) parts.

        Variances add: ``sigma_corr^2 + sigma_ind^2 == sigma_prop^2``.
        """
        var = sigma_prop * sigma_prop
        corr_var = self.correlated_fraction * var
        ind_var = var - corr_var
        return float(np.sqrt(corr_var)), float(np.sqrt(ind_var))
