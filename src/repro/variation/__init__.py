"""Process-variation substrate.

The paper adds two variation components to every gate delay (following
Cong 1997 and Nassif ISSCC 2000):

* a component **proportional to the delay through the gate**, whose relative
  magnitude shrinks as the gate is upsized (bigger devices average out more
  of the local variation), and
* an **unsystematic random** component that is independent of sizing and can
  never be optimized away.

:class:`~repro.variation.model.VariationModel` turns a nominal gate delay and
a gate size into a delay sigma; :mod:`repro.variation.correlation` provides
an optional spatial-correlation overlay (PCA-style grid) used by the outer
FULLSSTA loop.
"""

from repro.variation.model import VariationModel, GateDelayDistribution
from repro.variation.correlation import SpatialCorrelationModel

__all__ = [
    "VariationModel",
    "GateDelayDistribution",
    "SpatialCorrelationModel",
]
