"""Gate-delay variation model.

Every gate delay becomes a normally distributed random variable

    d ~ Normal(mu, sigma),   sigma = sigma_prop + sigma_rand

with

* ``sigma_prop = alpha / sqrt(drive) * mu`` — the *proportional* component.
  ``alpha`` is the relative sigma of a minimum-size (drive = 1) gate;
  dividing by ``sqrt(drive)`` captures the averaging of uncorrelated local
  variation over a wider device, which is exactly the lever the paper's
  sizer exploits ("our algorithm favors bigger gate sizes that reduce the
  variance of delay across them").
* ``sigma_rand`` — the *unsystematic* component, independent of size.  The
  paper notes this is the floor that prevents variance from being driven to
  zero no matter how large lambda is.

The defaults (``alpha = 0.6``, ``sigma_rand = 2 ps``) give minimum-size
gates a sigma of roughly half their delay and maximum-size gates about a
fifth of that, with a small size-independent floor.  These values are calibrated so that mean-delay-optimized
benchmark circuits land in the paper's Table 1 range of output sigma/mu
(about 0.02 for the deepest circuit up to about 0.12 for the shallow ALUs);
see EXPERIMENTS.md for the calibration comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.library.delay_model import BaseDelayModel
from repro.netlist.circuit import Circuit
from repro.netlist.gate import Gate


@dataclass(frozen=True)
class GateDelayDistribution:
    """Normal distribution of one gate's delay: ``Normal(mean, sigma)`` in ps."""

    mean: float
    sigma: float

    def __post_init__(self) -> None:
        if self.mean < 0:
            raise ValueError("gate delay mean must be non-negative")
        if self.sigma < 0:
            raise ValueError("gate delay sigma must be non-negative")

    @property
    def variance(self) -> float:
        return self.sigma * self.sigma

    @property
    def cv(self) -> float:
        """Coefficient of variation sigma/mu (0 if the mean is 0)."""
        return self.sigma / self.mean if self.mean > 0 else 0.0


class VariationModel:
    """Maps (nominal delay, gate size) -> delay sigma.

    Parameters
    ----------
    proportional_alpha:
        Relative sigma (sigma/mu) of a minimum-size gate's proportional
        variation component.
    random_sigma:
        Absolute sigma (ps) of the unsystematic random component.
    size_exponent:
        How fast the proportional component shrinks with drive strength:
        ``sigma_prop = alpha * mu / drive**size_exponent``.  The default of
        0.5 is the classic Pelgrom-style 1/sqrt(area) scaling.
    mean_sigma_coupling:
        The constant ``c`` used by the WNSS tracer to couple a change in
        mean to the expected change in sigma along a path
        (``delta_sigma ~= c * delta_mu``, paper section 4.4).  The paper
        states it used "values for c equal to those assumed to relate mean
        delay through a gate to its variance", i.e. the same alpha.
    """

    def __init__(
        self,
        proportional_alpha: float = 0.6,
        random_sigma: float = 2.0,
        size_exponent: float = 0.5,
        mean_sigma_coupling: Optional[float] = None,
    ) -> None:
        if proportional_alpha < 0:
            raise ValueError("proportional_alpha must be non-negative")
        if random_sigma < 0:
            raise ValueError("random_sigma must be non-negative")
        if size_exponent < 0:
            raise ValueError("size_exponent must be non-negative")
        self.proportional_alpha = float(proportional_alpha)
        self.random_sigma = float(random_sigma)
        self.size_exponent = float(size_exponent)
        self.mean_sigma_coupling = (
            float(mean_sigma_coupling)
            if mean_sigma_coupling is not None
            else self.proportional_alpha
        )

    # ------------------------------------------------------------------
    def sigma_for(self, nominal_delay: float, drive: float) -> float:
        """Delay sigma (ps) for a gate with ``nominal_delay`` and ``drive`` strength."""
        if nominal_delay < 0:
            raise ValueError("nominal_delay must be non-negative")
        if drive <= 0:
            raise ValueError("drive must be positive")
        proportional = self.proportional_alpha * nominal_delay / (drive ** self.size_exponent)
        return proportional + self.random_sigma

    def gate_distribution(
        self,
        circuit: Circuit,
        gate: Gate,
        delay_model: BaseDelayModel,
        size_index: Optional[int] = None,
    ) -> GateDelayDistribution:
        """Delay distribution of ``gate`` (optionally evaluated at another size)."""
        library = delay_model.library
        idx = gate.size_index if size_index is None else size_index
        mean = delay_model.gate_delay_at_size(circuit, gate, idx)
        drive = library.size(gate.cell_type, idx).drive
        return GateDelayDistribution(mean=mean, sigma=self.sigma_for(mean, drive))

    def all_gate_distributions(
        self, circuit: Circuit, delay_model: BaseDelayModel
    ) -> Dict[str, GateDelayDistribution]:
        """Delay distribution of every gate in ``circuit``, keyed by gate name."""
        return {
            gate.name: self.gate_distribution(circuit, gate, delay_model)
            for gate in circuit.gates.values()
        }

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return (
            f"VariationModel(alpha={self.proportional_alpha}, "
            f"random_sigma={self.random_sigma}, "
            f"size_exponent={self.size_exponent})"
        )
