"""Command-line interface.

``python -m repro.cli <command>`` (or the ``repro-sizer`` console script)
exposes the main flows without writing any Python:

* ``info``   — structural summary of a benchmark or ``.bench`` netlist;
* ``sta``    — deterministic STA report (worst delay, critical path);
* ``ssta``   — statistical STA report (FASSTA and FULLSSTA moments, optional
  Monte-Carlo validation and timing yield at a clock period);
* ``size``   — run the full flow (baseline mean-delay sizing followed by
  StatisticalGreedy) and report the Table 1 metrics for one circuit
  (``--explain-path`` additionally prints the final design's WNSS trace
  with every dominance-vs-sensitivity decision);
* ``report`` — statistical criticality report: per-gate criticality
  probabilities, top-k statistical paths, slack pdfs and an optional
  Monte-Carlo cross-check, as text, markdown or JSON;
* ``lint``   — run the static design-rule checker (DRC001 ...) over a
  circuit and report diagnostics as text or JSON; exit 0 when clean at the
  chosen severity threshold, 1 otherwise, 2 on usage errors;
* ``table1`` — regenerate Table 1 rows for a list of circuits;
* ``stats``  — summarize a ``trace.json`` (from ``size --trace`` or a sweep
  directory): per-span aggregates, root coverage and the metrics snapshot,
  as text or JSON;
* ``dashboard`` — render a sweep output directory (cell artifacts, per-cell
  traces, campaign trace, failure ledger) as one markdown or HTML page;
* ``sweep``  — parallel, resumable, fault-tolerant (circuit, lambda) sweep:
  fans the cells across a process pool (``--jobs``), persists each
  completed cell as a JSON artifact (``--out``), skips up-to-date cells on
  ``--resume``, bounds each attempt's wall clock (``--cell-timeout``),
  retries transient failures (``--max-retries``), records every failure in
  ``failures.json`` and survives Ctrl-C with a resumable checkpoint;
* ``benchmarks`` — list the available benchmark circuits and their stand-in
  gate counts versus the paper's.

Circuits are named by registry name (``alu2``, ``c432`` ...), by a synthetic
generator spec (``gen50k`` or ``gen:depth=40,width=250``), or by a path to an
ISCAS ``.bench`` or structural-Verilog ``.v`` netlist (``--top`` picks the
root module of a hierarchical design).  ``info --frontend`` additionally
reports what the netlist front end did on the way in: nets merged by
``assign``-alias canonicalization, repair buffers inserted, duplicate
drivers removed and any diagnostics.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Tuple

from repro.analysis.experiments import run_table1
from repro.analysis.metrics import criticality_report_data
from repro.analysis.report import (
    format_criticality_report,
    format_table,
    format_table1,
)
from repro.runner.errors import DeterministicError, SweepInterrupted
from repro.runner.ledger import LEDGER_FILENAME
from repro.runner.sweep import (
    SubstrateSpec,
    criticality_specs,
    fig4_specs,
    run_cells,
    table1_specs,
    yield_specs,
)
from repro.analysis.timing_yield import YieldReport
from repro.circuits.registry import (
    BENCHMARK_NAMES,
    GENERATED_SPECS,
    PAPER_GATE_COUNTS,
    build_benchmark,
)
from repro.core.baseline import MeanDelaySizer
from repro.core.fassta import FASSTA
from repro.core.fullssta import FULLSSTA
from repro.core.sizer import SizerConfig
from repro.flow import run_sizing_flow
from repro.montecarlo.mc import MonteCarloTimer
from repro.netlist.bench import parse_bench_file
from repro.obs import load_trace, write_trace
from repro.obs.report import (
    dashboard_data,
    format_stats_text,
    render_dashboard_html,
    render_dashboard_markdown,
    resolve_trace_path,
    stats_data,
)
from repro.netlist.circuit import Circuit
from repro.netlist.verilog import parse_verilog_file
from repro.netlist.validate import validate_circuit
from repro.sta.dsta import DeterministicSTA


def load_circuit(name_or_path: str, top: Optional[str] = None) -> Circuit:
    """Resolve a circuit argument.

    Accepts a registry name, a named synthetic scale point (``gen50k``), an
    inline generator spec (``gen:40,250``), or a path to a ``.bench`` or
    structural-Verilog ``.v``/``.sv`` netlist.  ``top`` selects the root
    module when a hierarchical Verilog file declares several.
    """
    path = Path(name_or_path)
    if path.suffix in (".v", ".sv"):
        return parse_verilog_file(path, top=top)
    if path.suffix == ".bench" or path.exists():
        return parse_bench_file(path)
    return build_benchmark(name_or_path)


def _frontend_result(name_or_path: str, top: Optional[str]):
    """The :class:`CanonicalizeResult` behind a circuit argument.

    Re-runs the front-end pipeline (parse -> elaborate -> canonicalize) so
    ``info --frontend`` can report net merges, repairs and diagnostics.
    Registry builders are routed through ``RawNetlist.from_circuit`` so the
    report works uniformly for every circuit source.
    """
    from repro.netlist.ast import RawNetlist
    from repro.netlist.bench import parse_bench_raw
    from repro.netlist.elaborate import elaborate_design
    from repro.netlist.verilog import parse_verilog_raw

    path = Path(name_or_path)
    if path.suffix in (".v", ".sv"):
        raw = parse_verilog_raw(path.read_text())
        return elaborate_design(raw, top=top, name=path.stem)
    if path.suffix == ".bench" or path.exists():
        raw = parse_bench_raw(path.read_text(), name=path.stem)
        return elaborate_design(raw, name=path.stem)
    if name_or_path.startswith("gen:") or name_or_path in GENERATED_SPECS:
        from repro.circuits.synthetic import parse_generated_spec, synthetic_raw

        spec = (GENERATED_SPECS[name_or_path]
                if name_or_path in GENERATED_SPECS
                else parse_generated_spec(name_or_path[len("gen:"):]))
        return elaborate_design(synthetic_raw(spec), name=spec.display_name)
    circuit = build_benchmark(name_or_path)
    return elaborate_design(RawNetlist.from_circuit(circuit), name=circuit.name)


def _substrate_spec(args) -> SubstrateSpec:
    """The picklable substrate recipe matching the common CLI options."""
    return SubstrateSpec(
        sizes_per_cell=args.sizes_per_cell,
        proportional_alpha=args.alpha,
        random_sigma=args.random_sigma,
    )


def _substrates(args) -> Tuple:
    return _substrate_spec(args).build()


def _add_frontend_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--top", default=None, metavar="MODULE",
                        help="top module of a hierarchical Verilog netlist "
                             "(default: the unique uninstantiated module)")


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--sizes-per-cell", type=int, default=7,
                        help="discrete sizes per cell type in the synthetic library")
    parser.add_argument("--alpha", type=float, default=0.6,
                        help="proportional variation coefficient of a minimum-size gate")
    parser.add_argument("--random-sigma", type=float, default=2.0,
                        help="unsystematic (size-independent) delay sigma in ps")


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------
def cmd_info(args) -> int:
    if args.frontend:
        result = _frontend_result(args.circuit, args.top)
        circuit = result.circuit
    else:
        result = None
        circuit = load_circuit(args.circuit, top=args.top)
    library, _, _ = _substrates(args)
    stats = circuit.stats()
    problems = validate_circuit(circuit, library, raise_on_error=False)
    print(f"circuit        : {stats.name}")
    print(f"gates          : {stats.num_gates}")
    print(f"primary inputs : {stats.num_primary_inputs}")
    print(f"primary outputs: {stats.num_primary_outputs}")
    print(f"logic depth    : {stats.logic_depth}")
    print(f"max fanout     : {stats.max_fanout}")
    print(f"avg fanin      : {stats.avg_fanin:.2f}")
    print(f"validation     : {'ok' if not problems else f'{len(problems)} problem(s)'}")
    for problem in problems:
        print(f"  - {problem}")
    if result is not None:
        print("front end:")
        print(f"  merged nets   : {result.merged_nets}")
        print(f"  repair buffers: {len(result.repairs)}")
        print(f"  deduplicated  : {len(result.deduplicated)}")
        print(f"  diagnostics   : {len(result.diagnostics)}")
        for diag in result.diagnostics:
            print(f"    [{diag.severity}] {diag.rule}: {diag.message}")
    return 1 if problems else 0


def cmd_sta(args) -> int:
    circuit = load_circuit(args.circuit, top=args.top)
    _, delay_model, _ = _substrates(args)
    report = DeterministicSTA(delay_model).analyze(circuit, clock_period=args.period)
    print(f"worst arrival : {report.worst_arrival:.1f} ps at {report.worst_output}")
    print(f"clock period  : {report.clock_period:.1f} ps")
    print(f"worst slack   : {report.wns:+.1f} ps")
    print(f"total area    : {delay_model.circuit_area(circuit):.0f} um^2")
    print(f"critical path ({len(report.critical_path)} gates):")
    for name in report.critical_path:
        gate = circuit.gate(name)
        print(f"  {name:16s} {gate.cell_type:8s} size {gate.size_index}  "
              f"delay {report.gate_delays[name]:7.1f} ps")
    return 0


def cmd_ssta(args) -> int:
    circuit = load_circuit(args.circuit, top=args.top)
    _, delay_model, variation_model = _substrates(args)
    fast = FASSTA(delay_model, variation_model).analyze(circuit).output_rv
    full = FULLSSTA(delay_model, variation_model).analyze(circuit).output_rv
    print(f"FASSTA   : mean {fast.mean:9.1f} ps   sigma {fast.sigma:7.2f} ps   "
          f"sigma/mu {fast.cv:.4f}")
    print(f"FULLSSTA : mean {full.mean:9.1f} ps   sigma {full.sigma:7.2f} ps   "
          f"sigma/mu {full.cv:.4f}")
    if args.monte_carlo:
        mc = MonteCarloTimer(delay_model, variation_model).run(
            circuit, num_samples=args.monte_carlo, seed=args.seed
        )
        print(f"MonteCarlo({args.monte_carlo}): mean {mc.mean:9.1f} ps   "
              f"sigma {mc.sigma:7.2f} ps   sigma/mu {mc.cv:.4f}")
    if args.period is not None:
        report = YieldReport.from_distribution(full, args.period)
        print(f"timing yield at {args.period:.0f} ps : {100 * report.yield_fraction:.1f} %")
        print(f"period for 99 % yield    : {report.period_for_99:.1f} ps")
    return 0


def _check_yield_options(objective: str, target_yields, max_area_ratio=None,
                         pdf_samples=None) -> Optional[str]:
    """Validate yield-mode CLI inputs; returns an error message or None."""
    if objective == "yield":
        for target in target_yields:
            if not 0.5 <= target < 1.0:
                return f"--target-yield must be in [0.5, 1), got {target:g}"
    if max_area_ratio is not None and max_area_ratio < 1.0:
        return f"--max-area-ratio must be >= 1, got {max_area_ratio:g}"
    if pdf_samples is not None and pdf_samples < 3:
        return f"--pdf-samples must be >= 3, got {pdf_samples}"
    return None


def cmd_size(args) -> int:
    problem = _check_yield_options(args.objective, [args.target_yield],
                                   args.max_area_ratio, args.pdf_samples)
    if problem:
        print(f"error: {problem}", file=sys.stderr)
        return 2
    circuit = load_circuit(args.circuit, top=args.top)
    library, delay_model, variation_model = _substrates(args)
    config = SizerConfig(
        lam=args.lam,
        max_iterations=args.max_iterations,
        objective=args.objective,
        target_yield=args.target_yield,
        max_area_ratio=args.max_area_ratio,
        pdf_samples=args.pdf_samples,
    )
    try:
        result = run_sizing_flow(
            circuit,
            lam=args.lam,
            library=library,
            delay_model=delay_model,
            variation_model=variation_model,
            sizer_config=config,
            monte_carlo_samples=args.monte_carlo,
            run_baseline=not args.no_baseline,
            preflight=not args.no_preflight,
        )
    except DeterministicError as exc:
        print(f"error: {exc}", file=sys.stderr)
        print("run `repro-sizer lint` for the full diagnostics, or "
              "--no-preflight to proceed anyway", file=sys.stderr)
        return 1
    if args.trace and result.trace is not None:
        write_trace(args.trace, result.trace)
        print(f"trace written to {args.trace}", file=sys.stderr)
    if args.objective == "yield":
        print(f"circuit {circuit.name}: {circuit.num_gates()} gates, "
              f"objective=yield target={args.target_yield:g} "
              f"(equivalent lambda={result.sizer_result.lam:.3f})")
    else:
        print(f"circuit {circuit.name}: {circuit.num_gates()} gates, lambda={args.lam:g}")
    print(f"  mean delay : {result.original_rv.mean:9.1f} -> {result.final_rv.mean:9.1f} ps "
          f"({result.mean_increase_pct:+.1f} %)")
    print(f"  sigma      : {result.original_rv.sigma:9.2f} -> {result.final_rv.sigma:9.2f} ps "
          f"({-result.sigma_reduction_pct:+.1f} %)")
    print(f"  sigma/mu   : {result.original_cv:9.4f} -> {result.final_cv:9.4f}")
    print(f"  area       : {result.original_area:9.0f} -> {result.final_area:9.0f} um^2 "
          f"({result.area_increase_pct:+.1f} %)")
    print(f"  runtime    : {result.sizer_result.runtime_seconds:.1f} s sizer "
          f"({len(result.sizer_result.iterations)} passes), "
          f"{result.total_runtime_seconds:.1f} s total flow")
    if args.objective == "yield":
        ys = result.yield_summary(args.target_yield)
        print(f"  period@{100 * args.target_yield:.4g}% : {ys['original_period']:9.1f} -> "
              f"{ys['final_period']:9.1f} ps ({-ys['period_reduction_pct']:+.1f} %)")
        print(f"  yield at {ys['final_period']:.1f} ps : "
              f"{100 * ys['original_yield_at_final_period']:.2f} % -> "
              f"{100 * ys['final_yield_at_final_period']:.2f} %")
    if result.mc_original and result.mc_final:
        print(f"  MC sigma   : {result.mc_original.sigma:9.2f} -> {result.mc_final.sigma:9.2f} ps")
    if args.explain_path and result.final_wnss is not None:
        wnss = result.final_wnss
        print(f"  WNSS path of the final design ({len(wnss.gates)} gates, "
              f"output {wnss.output_net}, arrival "
              f"{wnss.output_rv.mean:.1f}+/-{wnss.output_rv.sigma:.1f} ps):")
        for decision in reversed(wnss.decisions):
            candidates = "  ".join(
                f"{net}={rv.mean:.1f}+/-{rv.sigma:.1f}"
                + ("*" if net == decision.chosen_net else "")
                for net, rv in decision.candidates.items()
            )
            print(f"    {decision.gate:16s} {decision.method:11s} "
                  f"-> {decision.chosen_net:12s} [{candidates}]")
    return 0


def cmd_lint(args) -> int:
    """Static design-rule check of one circuit (text or JSON diagnostics)."""
    from repro.verify import Severity, lint_circuit, rule_catalogue

    if args.list_rules:
        headers = ["rule", "severity", "library", "title"]
        rows = [
            (r["rule_id"], r["severity"],
             "yes" if r["requires_library"] else "-", r["title"])
            for r in rule_catalogue()
        ]
        print(format_table(headers, rows))
        return 0
    if not args.circuit:
        print("error: a circuit is required unless --list-rules is given",
              file=sys.stderr)
        return 2
    circuit = load_circuit(args.circuit, top=args.top)
    library = None if args.no_library else _substrates(args)[0]
    report = lint_circuit(circuit, library=library)
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.format_text())
    fail_on = Severity.WARNING if args.fail_on == "warning" else Severity.ERROR
    return report.exit_code(fail_on=fail_on)


def cmd_report(args) -> int:
    """Statistical criticality report (text / markdown / JSON)."""
    if args.top_k < 1:
        print("error: --top-k must be >= 1", file=sys.stderr)
        return 2
    circuit = load_circuit(args.circuit, top=args.top)
    _, delay_model, variation_model = _substrates(args)
    if args.baseline:
        MeanDelaySizer(delay_model).optimize(circuit)

    # Lazy imports keep the criticality stack out of unrelated commands.
    from repro.criticality import (
        CriticalityAnalyzer,
        MonteCarloCriticality,
        compute_slacks,
        extract_top_paths,
    )

    analysis = FASSTA(
        delay_model,
        variation_model,
        vectorized=True,
        worst_key=lambda rv: rv.mean + args.lam * rv.sigma,
    ).analyze(circuit)
    crit = CriticalityAnalyzer(circuit).analyze(analysis.arrivals)
    paths = extract_top_paths(circuit, crit, analysis.arrivals, k=args.top_k)
    slack = compute_slacks(
        circuit,
        analysis.arrivals,
        analysis.gate_delays,
        clock_period=args.period,
        lam=args.lam,
    )
    mc = None
    if args.monte_carlo:
        mc = MonteCarloCriticality(delay_model, variation_model).run(
            circuit, num_samples=args.monte_carlo, seed=args.seed, paths=paths
        )
    data = criticality_report_data(circuit, crit, paths, slack, mc)
    if args.format == "json":
        import json

        text = json.dumps(data, indent=2, sort_keys=True)
    else:
        text = format_criticality_report(data, markdown=(args.format == "markdown"))
    if args.out:
        Path(args.out).write_text(text + "\n")
        print(f"report written to {args.out}")
    else:
        print(text)
    return 0


#: Default circuit subset for table1/sweep runs (small enough to regenerate
#: interactively; the full 13-circuit set is spelled out explicitly).
DEFAULT_TABLE1_CIRCUITS = ["alu1", "alu2", "alu3", "c432", "c499"]
#: Circuits for ``sweep --quick`` (CI smoke).
QUICK_SWEEP_CIRCUITS = ["c17", "alu1"]


def _sweep_sizer_config(args, quick: bool) -> Optional[SizerConfig]:
    """Sizer configuration for table1/sweep runs (lambda replaced per cell)."""
    if quick:
        return SizerConfig(
            lam=args.lam[0],
            max_iterations=(
                args.max_iterations if args.max_iterations is not None else 4
            ),
            max_outputs_per_pass=2,
            patience=2,
        )
    if args.max_iterations is not None:
        return SizerConfig(lam=args.lam[0], max_iterations=args.max_iterations)
    return None


def cmd_table1(args) -> int:
    circuits = args.circuits or DEFAULT_TABLE1_CIRCUITS
    rows = run_table1(
        circuits,
        lams=tuple(args.lam),
        sizer_config=_sweep_sizer_config(args, quick=False),
        substrates=_substrate_spec(args),
    )
    print(format_table1(rows))
    return 0


def cmd_sweep(args) -> int:
    if args.kind not in ("table1", "criticality") and args.monte_carlo:
        print("error: --monte-carlo is only supported with "
              "--kind table1/criticality", file=sys.stderr)
        return 2
    if args.kind == "yield":
        problem = _check_yield_options("yield", args.target_yield)
        if problem:
            print(f"error: {problem}", file=sys.stderr)
            return 2
    if args.kind == "criticality" and args.top_k < 1:
        print(f"error: --top-k must be >= 1, got {args.top_k}", file=sys.stderr)
        return 2
    substrates = _substrate_spec(args)
    config = _sweep_sizer_config(args, quick=args.quick)
    circuits = args.circuits or (
        QUICK_SWEEP_CIRCUITS if args.quick else DEFAULT_TABLE1_CIRCUITS
    )
    if args.kind == "table1":
        specs = table1_specs(
            circuits,
            args.lam,
            sizer_config=config,
            substrates=substrates,
            monte_carlo_samples=args.monte_carlo,
            seed=args.seed,
        )
    elif args.kind == "yield":
        specs = yield_specs(
            circuits,
            args.target_yield,
            sizer_config=config,
            substrates=substrates,
        )
    elif args.kind == "criticality":
        specs = criticality_specs(
            circuits,
            top_k=args.top_k,
            monte_carlo_samples=args.monte_carlo,
            seed=args.seed,
            substrates=substrates,
        )
    else:
        specs = [
            spec
            for name in circuits
            for spec in fig4_specs(
                name, args.lam, sizer_config=config, substrates=substrates
            )
        ]

    # Progress goes to stderr so stdout stays a clean result table that can
    # be piped; --quiet drops it, --progress json emits one object per cell.
    def progress(done, total, result):
        if args.quiet:
            return
        status = "cached" if result.from_cache else "computed"
        if args.progress == "json":
            import json

            print(
                json.dumps({
                    "done": done,
                    "total": total,
                    "kind": result.spec.kind,
                    "circuit": result.spec.circuit,
                    "lam": result.spec.lam,
                    "target_yield": result.spec.target_yield,
                    "status": status,
                    "runtime_seconds": result.runtime_seconds,
                }, sort_keys=True),
                file=sys.stderr,
                flush=True,
            )
            return
        if result.spec.kind == "yield":
            axis = f"y={result.spec.target_yield:<5g}"
        elif result.spec.kind == "criticality":
            axis = f"k={result.spec.top_k or 5:<6d}"
        else:
            axis = f"lam={result.spec.lam:<4g}"
        print(
            f"[{done:3d}/{total:3d}] {result.spec.kind} "
            f"{result.spec.circuit:<8s} {axis} "
            f"{status:8s} {result.runtime_seconds:8.1f} s",
            file=sys.stderr,
            flush=True,
        )

    try:
        report = run_cells(
            specs,
            jobs=args.jobs,
            out_dir=args.out,
            resume=args.resume,
            progress=progress,
            cell_timeout=args.cell_timeout,
            max_retries=args.max_retries,
            retry_backoff=args.retry_backoff,
            on_error=args.on_error,
            preflight=not args.no_preflight,
        )
    except DeterministicError as exc:
        print(f"error: {exc}", file=sys.stderr)
        print("run `repro-sizer lint` for the full diagnostics, or "
              "--no-preflight to proceed anyway", file=sys.stderr)
        return 1
    except SweepInterrupted as exc:
        print()
        if exc.report is not None:
            print(exc.report.summary())
        print("interrupted: rerun with --resume to pick up where this sweep "
              "stopped", file=sys.stderr)
        return 130
    print()
    if args.kind == "table1":
        print(format_table1([r.table1_row() for r in report.results]))
    elif args.kind == "yield":
        headers = ["circuit", "target", "orig_period", "period_ps", "delta_pct",
                   "orig_yield_pct", "area_um2"]
        body = []
        for result in report.results:
            cell = result.result
            body.append((
                cell["circuit"], f"{cell['target_yield']:g}",
                f"{cell['original_period']:.1f}", f"{cell['final_period']:.1f}",
                f"{-cell['period_reduction_pct']:+.1f}",
                f"{100 * cell['original_yield_at_final_period']:.2f}",
                f"{cell['area']:.0f}",
            ))
        print(format_table(headers, body))
    elif args.kind == "criticality":
        headers = ["circuit", "gates", "paths", "top_mass", "source_mass",
                   "mc_max_err", "mc_mean_err"]
        body = []
        for result in report.results:
            cell = result.result
            body.append((
                cell["circuit"], cell["gates"], len(cell["top_paths"]),
                f"{cell['top_path_mass']:.4f}", f"{cell['source_mass']:.6f}",
                (f"{cell['mc_max_abs_gate_error']:.4f}"
                 if "mc_max_abs_gate_error" in cell else "-"),
                (f"{cell['mc_mean_abs_gate_error']:.5f}"
                 if "mc_mean_abs_gate_error" in cell else "-"),
            ))
        print(format_table(headers, body))
    else:
        headers = ["circuit", "lambda", "mean_ps", "sigma_ps", "norm_mean",
                   "norm_sigma", "area_um2"]
        body = []
        for result in report.results:
            cell = result.result
            mu0 = cell["original_mean"] or 1.0
            body.append((
                cell["circuit"], f"{cell['lam']:g}", f"{cell['mean']:.1f}",
                f"{cell['sigma']:.2f}", f"{cell['mean'] / mu0:.3f}",
                f"{cell['sigma'] / mu0:.4f}", f"{cell['area']:.0f}",
            ))
        print(format_table(headers, body))
    print(report.summary())
    if report.failed:
        for record in report.failures:
            print(f"failed: {record.cell} [{record.category}] "
                  f"{record.error}: {record.message}", file=sys.stderr)
        print(f"full tracebacks in {Path(args.out) / LEDGER_FILENAME}",
              file=sys.stderr)
        return 1
    return 0


def cmd_stats(args) -> int:
    """Summarize one trace payload (file or sweep directory)."""
    try:
        payload = load_trace(resolve_trace_path(args.path))
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    data = stats_data(payload)
    if args.format == "json":
        import json

        print(json.dumps(data, indent=2, sort_keys=True))
    else:
        print(format_stats_text(data, top=args.top))
    return 0


def cmd_dashboard(args) -> int:
    """Render a sweep output directory as a markdown or HTML page."""
    try:
        data = dashboard_data(args.dir)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "html":
        text = render_dashboard_html(data)
    else:
        text = render_dashboard_markdown(data)
    if args.out:
        Path(args.out).write_text(text)
        print(f"dashboard written to {args.out}")
    else:
        print(text, end="")
    return 0


def cmd_benchmarks(args) -> int:
    headers = ["name", "paper gates", "generated gates", "depth"]
    rows = []
    for name in BENCHMARK_NAMES:
        circuit = build_benchmark(name)
        rows.append((name, PAPER_GATE_COUNTS[name], circuit.num_gates(), circuit.logic_depth()))
    print(format_table(headers, rows))
    return 0


# ---------------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sizer",
        description="Statistical gate sizing for process-variation tolerance "
                    "(Neiroukh & Song, DATE 2005 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="structural summary of a circuit")
    p_info.add_argument("circuit")
    p_info.add_argument("--frontend", action="store_true",
                        help="also report the netlist front end's work: "
                             "merged alias nets, repair buffers, removed "
                             "duplicate drivers and diagnostics")
    _add_frontend_options(p_info)
    _add_common_options(p_info)
    p_info.set_defaults(func=cmd_info)

    p_sta = sub.add_parser("sta", help="deterministic STA report")
    p_sta.add_argument("circuit")
    p_sta.add_argument("--period", type=float, default=None, help="clock period in ps")
    _add_frontend_options(p_sta)
    _add_common_options(p_sta)
    p_sta.set_defaults(func=cmd_sta)

    p_ssta = sub.add_parser("ssta", help="statistical STA report")
    p_ssta.add_argument("circuit")
    p_ssta.add_argument("--monte-carlo", type=int, default=0, metavar="N",
                        help="validate with N Monte-Carlo samples")
    p_ssta.add_argument("--period", type=float, default=None,
                        help="report timing yield at this clock period (ps)")
    p_ssta.add_argument("--seed", type=int, default=0)
    _add_frontend_options(p_ssta)
    _add_common_options(p_ssta)
    p_ssta.set_defaults(func=cmd_ssta)

    p_size = sub.add_parser("size", help="run the full statistical sizing flow")
    p_size.add_argument("circuit")
    p_size.add_argument("--lam", type=float, default=3.0, help="Eq. 7 sigma weight")
    p_size.add_argument("--objective", choices=["cost", "yield"], default="cost",
                        help="minimize the weighted cost (Eq. 7) or the clock "
                             "period achieving --target-yield")
    p_size.add_argument("--target-yield", type=float, default=0.99,
                        help="parametric timing-yield target for "
                             "--objective yield (in [0.5, 1))")
    p_size.add_argument("--max-area-ratio", type=float, default=None,
                        help="reject sizings whose area exceeds this multiple "
                             "of the starting area (>= 1)")
    p_size.add_argument("--pdf-samples", type=int, default=13,
                        help="FULLSSTA samples per pdf (more sharpens the "
                             "yield-objective quantile)")
    p_size.add_argument("--max-iterations", type=int, default=60)
    p_size.add_argument("--monte-carlo", type=int, default=0, metavar="N")
    p_size.add_argument("--no-baseline", action="store_true",
                        help="skip the mean-delay baseline sizing step")
    p_size.add_argument("--no-preflight", action="store_true",
                        help="skip the pre-flight DRC lint of the circuit")
    p_size.add_argument("--explain-path", action="store_true",
                        help="print the final design's WNSS trace with every "
                             "dominance-vs-sensitivity decision")
    p_size.add_argument("--trace", default=None, metavar="FILE",
                        help="persist the flow's timing-span trace as FILE "
                             "(inspect with `repro-sizer stats FILE`)")
    _add_frontend_options(p_size)
    _add_common_options(p_size)
    p_size.set_defaults(func=cmd_size)

    p_report = sub.add_parser(
        "report",
        help="statistical criticality report (gate/path criticality "
             "probabilities, slack pdfs)",
    )
    p_report.add_argument("circuit")
    p_report.add_argument("--lam", type=float, default=3.0,
                          help="sigma weight used for the default clock "
                               "period and output ranking")
    p_report.add_argument("--top-k", type=int, default=5,
                          help="number of statistical paths to extract")
    p_report.add_argument("--period", type=float, default=None,
                          help="clock period (ps) anchoring the slack pdfs; "
                               "defaults to the worst weighted output cost")
    p_report.add_argument("--baseline", action="store_true",
                          help="size for minimum mean delay before analysing")
    p_report.add_argument("--monte-carlo", type=int, default=0, metavar="N",
                          help="cross-check criticalities against N "
                               "Monte-Carlo critical-path draws")
    p_report.add_argument("--seed", type=int, default=0)
    p_report.add_argument("--format", choices=["text", "markdown", "json"],
                          default="text")
    p_report.add_argument("--out", default=None, metavar="FILE",
                          help="write the report to FILE instead of stdout")
    _add_frontend_options(p_report)
    _add_common_options(p_report)
    p_report.set_defaults(func=cmd_report)

    p_lint = sub.add_parser(
        "lint",
        help="static design-rule check of a circuit (DRC001 ...)",
    )
    p_lint.add_argument("circuit", nargs="?", default=None,
                        help="registry name, gen: spec, or .bench/.v path")
    p_lint.add_argument("--format", choices=["text", "json"], default="text")
    p_lint.add_argument("--fail-on", choices=["error", "warning"],
                        default="error",
                        help="lowest severity that makes the exit code 1 "
                             "(default: error)")
    p_lint.add_argument("--no-library", action="store_true",
                        help="skip the library-domain rules (DRC007-DRC010)")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    _add_frontend_options(p_lint)
    _add_common_options(p_lint)
    p_lint.set_defaults(func=cmd_lint)

    p_table = sub.add_parser("table1", help="regenerate Table 1 rows")
    p_table.add_argument("circuits", nargs="*", help="circuit names (default: small subset)")
    p_table.add_argument("--lam", type=float, nargs="+", default=[3.0, 9.0])
    p_table.add_argument("--max-iterations", type=int, default=None,
                         help="cap the sizer's outer-loop passes per cell")
    _add_common_options(p_table)
    p_table.set_defaults(func=cmd_table1)

    p_sweep = sub.add_parser(
        "sweep",
        help="parallel, resumable (circuit, lambda) sweep with JSON artifacts",
    )
    p_sweep.add_argument("circuits", nargs="*",
                         help="circuit names (default: small subset; "
                              "--quick shrinks it further)")
    p_sweep.add_argument("--lam", type=float, nargs="+", default=[3.0, 9.0])
    p_sweep.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="worker processes (1 = serial, in-process)")
    p_sweep.add_argument("--out", default="sweep-results", metavar="DIR",
                         help="artifact directory (one JSON file per cell)")
    p_sweep.add_argument("--resume", action="store_true",
                         help="skip cells whose artifact matches the current config")
    p_sweep.add_argument("--quick", action="store_true",
                         help="CI smoke mode: tiny circuits, reduced sizer budget")
    p_sweep.add_argument("--kind",
                         choices=["table1", "fig4", "yield", "criticality"],
                         default="table1",
                         help="cell type: Table-1 rows, Fig-4 trade-off points, "
                              "yield-objective cells or criticality analyses")
    p_sweep.add_argument("--target-yield", type=float, nargs="+", default=[0.99],
                         help="target yields swept by --kind yield")
    p_sweep.add_argument("--top-k", type=int, default=5,
                         help="statistical paths per --kind criticality cell")
    p_sweep.add_argument("--monte-carlo", type=int, default=0, metavar="N",
                         help="validate each table1/criticality cell with N "
                              "MC samples")
    p_sweep.add_argument("--max-iterations", type=int, default=None,
                         help="cap the sizer's outer-loop passes per cell")
    p_sweep.add_argument("--cell-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="kill any attempt exceeding this wall clock "
                              "(requires --jobs > 1; the cell counts as a "
                              "timeout failure and retries if budget remains)")
    p_sweep.add_argument("--max-retries", type=int, default=2,
                         help="extra attempts per cell for transient/timeout/"
                              "crash failures (deterministic errors never "
                              "retry)")
    p_sweep.add_argument("--retry-backoff", type=float, default=0.5,
                         metavar="SECONDS",
                         help="base delay before retrying; doubles per attempt")
    p_sweep.add_argument("--on-error", choices=["fail", "continue"],
                         default="fail",
                         help="fail: raise after running every cell (default); "
                              "continue: report failures and exit 1")
    p_sweep.add_argument("--no-preflight", action="store_true",
                         help="skip the pre-flight DRC lint of each pending "
                              "circuit (defective netlists then fail inside "
                              "the workers instead of up front)")
    p_sweep.add_argument("--seed", type=int, default=0)
    p_sweep.add_argument("--quiet", action="store_true",
                         help="suppress per-cell progress lines (stderr)")
    p_sweep.add_argument("--progress", choices=["text", "json"], default="text",
                         help="per-cell progress format on stderr: aligned "
                              "text lines or one JSON object per cell")
    _add_common_options(p_sweep)
    p_sweep.set_defaults(func=cmd_sweep)

    p_stats = sub.add_parser(
        "stats",
        help="summarize a trace.json: per-span aggregates, coverage, metrics",
    )
    p_stats.add_argument("path",
                         help="trace file, or a sweep directory holding a "
                              "campaign trace.json")
    p_stats.add_argument("--format", choices=["text", "json"], default="text")
    p_stats.add_argument("--top", type=int, default=20,
                         help="span names shown in the text table")
    p_stats.set_defaults(func=cmd_stats)

    p_dash = sub.add_parser(
        "dashboard",
        help="render a sweep directory (artifacts + traces + failures) as "
             "markdown or HTML",
    )
    p_dash.add_argument("dir", help="sweep output directory (see sweep --out)")
    p_dash.add_argument("--format", choices=["markdown", "html"],
                        default="markdown")
    p_dash.add_argument("--out", default=None, metavar="FILE",
                        help="write the page to FILE instead of stdout")
    p_dash.set_defaults(func=cmd_dashboard)

    p_bench = sub.add_parser("benchmarks", help="list available benchmark circuits")
    _add_common_options(p_bench)
    p_bench.set_defaults(func=cmd_benchmarks)

    return parser


def main(argv: Optional[list] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pipe (e.g. `| head`) closed early; not an error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
