"""Command-line interface.

``python -m repro.cli <command>`` (or the ``repro-sizer`` console script)
exposes the main flows without writing any Python:

* ``info``   — structural summary of a benchmark or ``.bench`` netlist;
* ``sta``    — deterministic STA report (worst delay, critical path);
* ``ssta``   — statistical STA report (FASSTA and FULLSSTA moments, optional
  Monte-Carlo validation and timing yield at a clock period);
* ``size``   — run the full flow (baseline mean-delay sizing followed by
  StatisticalGreedy) and report the Table 1 metrics for one circuit;
* ``table1`` — regenerate Table 1 rows for a list of circuits;
* ``benchmarks`` — list the available benchmark circuits and their stand-in
  gate counts versus the paper's.

Circuits are named either by registry name (``alu2``, ``c432`` ...) or by a
path to an ISCAS ``.bench`` file.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Tuple

from repro.analysis.experiments import run_table1
from repro.analysis.report import format_table, format_table1
from repro.analysis.timing_yield import YieldReport
from repro.circuits.registry import BENCHMARK_NAMES, PAPER_GATE_COUNTS, build_benchmark
from repro.core.baseline import MeanDelaySizer
from repro.core.fassta import FASSTA
from repro.core.fullssta import FULLSSTA
from repro.core.sizer import SizerConfig, StatisticalGreedySizer
from repro.flow import run_sizing_flow
from repro.library.delay_model import LookupTableDelayModel
from repro.library.synthetic90nm import make_synthetic_90nm_library
from repro.montecarlo.mc import MonteCarloTimer
from repro.netlist.bench import parse_bench_file
from repro.netlist.circuit import Circuit
from repro.netlist.validate import validate_circuit
from repro.sta.dsta import DeterministicSTA
from repro.variation.model import VariationModel


def load_circuit(name_or_path: str) -> Circuit:
    """Resolve a circuit argument: registry name or path to a ``.bench`` file."""
    path = Path(name_or_path)
    if path.suffix == ".bench" or path.exists():
        return parse_bench_file(path)
    return build_benchmark(name_or_path)


def _substrates(args) -> Tuple:
    library = make_synthetic_90nm_library(sizes_per_cell=args.sizes_per_cell)
    delay_model = LookupTableDelayModel(library)
    variation_model = VariationModel(
        proportional_alpha=args.alpha, random_sigma=args.random_sigma
    )
    return library, delay_model, variation_model


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--sizes-per-cell", type=int, default=7,
                        help="discrete sizes per cell type in the synthetic library")
    parser.add_argument("--alpha", type=float, default=0.6,
                        help="proportional variation coefficient of a minimum-size gate")
    parser.add_argument("--random-sigma", type=float, default=2.0,
                        help="unsystematic (size-independent) delay sigma in ps")


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------
def cmd_info(args) -> int:
    circuit = load_circuit(args.circuit)
    library, _, _ = _substrates(args)
    stats = circuit.stats()
    problems = validate_circuit(circuit, library, raise_on_error=False)
    print(f"circuit        : {stats.name}")
    print(f"gates          : {stats.num_gates}")
    print(f"primary inputs : {stats.num_primary_inputs}")
    print(f"primary outputs: {stats.num_primary_outputs}")
    print(f"logic depth    : {stats.logic_depth}")
    print(f"max fanout     : {stats.max_fanout}")
    print(f"avg fanin      : {stats.avg_fanin:.2f}")
    print(f"validation     : {'ok' if not problems else f'{len(problems)} problem(s)'}")
    for problem in problems:
        print(f"  - {problem}")
    return 1 if problems else 0


def cmd_sta(args) -> int:
    circuit = load_circuit(args.circuit)
    _, delay_model, _ = _substrates(args)
    report = DeterministicSTA(delay_model).analyze(circuit, clock_period=args.period)
    print(f"worst arrival : {report.worst_arrival:.1f} ps at {report.worst_output}")
    print(f"clock period  : {report.clock_period:.1f} ps")
    print(f"worst slack   : {report.wns:+.1f} ps")
    print(f"total area    : {delay_model.circuit_area(circuit):.0f} um^2")
    print(f"critical path ({len(report.critical_path)} gates):")
    for name in report.critical_path:
        gate = circuit.gate(name)
        print(f"  {name:16s} {gate.cell_type:8s} size {gate.size_index}  "
              f"delay {report.gate_delays[name]:7.1f} ps")
    return 0


def cmd_ssta(args) -> int:
    circuit = load_circuit(args.circuit)
    _, delay_model, variation_model = _substrates(args)
    fast = FASSTA(delay_model, variation_model).analyze(circuit).output_rv
    full = FULLSSTA(delay_model, variation_model).analyze(circuit).output_rv
    print(f"FASSTA   : mean {fast.mean:9.1f} ps   sigma {fast.sigma:7.2f} ps   "
          f"sigma/mu {fast.cv:.4f}")
    print(f"FULLSSTA : mean {full.mean:9.1f} ps   sigma {full.sigma:7.2f} ps   "
          f"sigma/mu {full.cv:.4f}")
    if args.monte_carlo:
        mc = MonteCarloTimer(delay_model, variation_model).run(
            circuit, num_samples=args.monte_carlo, seed=args.seed
        )
        print(f"MonteCarlo({args.monte_carlo}): mean {mc.mean:9.1f} ps   "
              f"sigma {mc.sigma:7.2f} ps   sigma/mu {mc.cv:.4f}")
    if args.period is not None:
        report = YieldReport.from_distribution(full, args.period)
        print(f"timing yield at {args.period:.0f} ps : {100 * report.yield_fraction:.1f} %")
        print(f"period for 99 % yield    : {report.period_for_99:.1f} ps")
    return 0


def cmd_size(args) -> int:
    circuit = load_circuit(args.circuit)
    library, delay_model, variation_model = _substrates(args)
    config = SizerConfig(lam=args.lam, max_iterations=args.max_iterations)
    result = run_sizing_flow(
        circuit,
        lam=args.lam,
        library=library,
        delay_model=delay_model,
        variation_model=variation_model,
        sizer_config=config,
        monte_carlo_samples=args.monte_carlo,
        run_baseline=not args.no_baseline,
    )
    print(f"circuit {circuit.name}: {circuit.num_gates()} gates, lambda={args.lam:g}")
    print(f"  mean delay : {result.original_rv.mean:9.1f} -> {result.final_rv.mean:9.1f} ps "
          f"({result.mean_increase_pct:+.1f} %)")
    print(f"  sigma      : {result.original_rv.sigma:9.2f} -> {result.final_rv.sigma:9.2f} ps "
          f"({-result.sigma_reduction_pct:+.1f} %)")
    print(f"  sigma/mu   : {result.original_cv:9.4f} -> {result.final_cv:9.4f}")
    print(f"  area       : {result.original_area:9.0f} -> {result.final_area:9.0f} um^2 "
          f"({result.area_increase_pct:+.1f} %)")
    print(f"  runtime    : {result.sizer_result.runtime_seconds:.1f} s "
          f"({len(result.sizer_result.iterations)} passes)")
    if result.mc_original and result.mc_final:
        print(f"  MC sigma   : {result.mc_original.sigma:9.2f} -> {result.mc_final.sigma:9.2f} ps")
    return 0


def cmd_table1(args) -> int:
    circuits = args.circuits or ["alu1", "alu2", "alu3", "c432", "c499"]
    rows = run_table1(circuits, lams=tuple(args.lam))
    print(format_table1(rows))
    return 0


def cmd_benchmarks(args) -> int:
    headers = ["name", "paper gates", "generated gates", "depth"]
    rows = []
    for name in BENCHMARK_NAMES:
        circuit = build_benchmark(name)
        rows.append((name, PAPER_GATE_COUNTS[name], circuit.num_gates(), circuit.logic_depth()))
    print(format_table(headers, rows))
    return 0


# ---------------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sizer",
        description="Statistical gate sizing for process-variation tolerance "
                    "(Neiroukh & Song, DATE 2005 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="structural summary of a circuit")
    p_info.add_argument("circuit")
    _add_common_options(p_info)
    p_info.set_defaults(func=cmd_info)

    p_sta = sub.add_parser("sta", help="deterministic STA report")
    p_sta.add_argument("circuit")
    p_sta.add_argument("--period", type=float, default=None, help="clock period in ps")
    _add_common_options(p_sta)
    p_sta.set_defaults(func=cmd_sta)

    p_ssta = sub.add_parser("ssta", help="statistical STA report")
    p_ssta.add_argument("circuit")
    p_ssta.add_argument("--monte-carlo", type=int, default=0, metavar="N",
                        help="validate with N Monte-Carlo samples")
    p_ssta.add_argument("--period", type=float, default=None,
                        help="report timing yield at this clock period (ps)")
    p_ssta.add_argument("--seed", type=int, default=0)
    _add_common_options(p_ssta)
    p_ssta.set_defaults(func=cmd_ssta)

    p_size = sub.add_parser("size", help="run the full statistical sizing flow")
    p_size.add_argument("circuit")
    p_size.add_argument("--lam", type=float, default=3.0, help="Eq. 7 sigma weight")
    p_size.add_argument("--max-iterations", type=int, default=60)
    p_size.add_argument("--monte-carlo", type=int, default=0, metavar="N")
    p_size.add_argument("--no-baseline", action="store_true",
                        help="skip the mean-delay baseline sizing step")
    _add_common_options(p_size)
    p_size.set_defaults(func=cmd_size)

    p_table = sub.add_parser("table1", help="regenerate Table 1 rows")
    p_table.add_argument("circuits", nargs="*", help="circuit names (default: small subset)")
    p_table.add_argument("--lam", type=float, nargs="+", default=[3.0, 9.0])
    _add_common_options(p_table)
    p_table.set_defaults(func=cmd_table1)

    p_bench = sub.add_parser("benchmarks", help="list available benchmark circuits")
    _add_common_options(p_bench)
    p_bench.set_defaults(func=cmd_benchmarks)

    return parser


def main(argv: Optional[list] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
