"""A crash-aware process pool with per-task attribution and hang kills.

``concurrent.futures.ProcessPoolExecutor`` cannot survive the failures
long sweeps actually hit: one OOM-killed worker raises
``BrokenProcessPool`` on *every* in-flight future (losing the whole
campaign's remaining cells), a hung worker cannot be killed individually,
and a crash cannot be attributed to the task that caused it because the
executor does not expose which process ran what.

:class:`FaultTolerantPool` fixes all three by construction: every worker
owns a dedicated duplex pipe, and the parent records which task each
worker is running.  So

* a **crash** (sentinel fires with no result message) is attributed to
  exactly the task its worker was evaluating — sibling workers never
  notice, and only the dead worker is respawned;
* a **hang** is killed per-worker when its task's deadline passes — again
  without disturbing siblings;
* normal results flow back over the pipes with no shared queues and no
  feeder threads.

Workers ignore SIGINT so that Ctrl-C (delivered to the whole foreground
process group) leaves them finishing their current cells while the parent
coordinates a graceful drain.

The pool is deliberately generic — it executes ``task_fn(*args)`` — but
its only in-repo client is :func:`repro.runner.sweep.run_cells`.
"""

from __future__ import annotations

import multiprocessing
import signal
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple

from repro.obs import METRICS, clock
from repro.runner.errors import classify_exception


@dataclass(frozen=True)
class RemoteError:
    """A worker-side exception, flattened so it pickles faithfully."""

    error: str        #: exception class name
    message: str
    traceback: str
    category: str     #: see repro.runner.errors.classify_exception


@dataclass(frozen=True)
class PoolEvent:
    """One completed/failed task attempt reported by :meth:`wait`.

    ``kind`` is ``"ok"`` (``value`` is the task's return), ``"error"``
    (``value`` is a :class:`RemoteError`), ``"crash"`` (``value`` is the
    worker's exit code) or ``"timeout"`` (``value`` is ``None``).
    """

    kind: str
    tag: Any
    value: Any
    elapsed_seconds: float


def _worker_main(conn, task_fn: Callable) -> None:
    """Worker loop: receive ``(tag, args)``, send back ``(kind, tag, ...)``."""
    # The parent coordinates interrupt draining; workers must not die on
    # the process-group SIGINT or their in-flight cells would be lost.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if task is None:
            return
        tag, args = task
        start = clock()
        try:
            result = task_fn(*args)
        except BaseException as exc:
            payload = (
                "error",
                tag,
                RemoteError(
                    error=type(exc).__name__,
                    message=str(exc),
                    traceback=traceback.format_exc(),
                    category=classify_exception(exc),
                ),
                clock() - start,
            )
        else:
            payload = ("ok", tag, result, clock() - start)
        try:
            conn.send(payload)
        except (BrokenPipeError, OSError):
            return


@dataclass
class _Task:
    tag: Any
    deadline: Optional[float]      #: monotonic deadline, None = unbounded
    started_at: float


class _Worker:
    __slots__ = ("process", "conn", "task")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        self.task: Optional[_Task] = None


class FaultTolerantPool:
    """Fixed-size pool of worker processes executing ``task_fn(*args)``."""

    def __init__(self, task_fn: Callable, max_workers: int) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self._task_fn = task_fn
        self._ctx = multiprocessing.get_context()
        self._workers: List[_Worker] = [self._spawn() for _ in range(max_workers)]

    # -- lifecycle ---------------------------------------------------------
    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main, args=(child_conn, self._task_fn), daemon=True
        )
        process.start()
        child_conn.close()
        return _Worker(process, parent_conn)

    def _respawn(self, worker: _Worker) -> None:
        METRICS.counter("pool.respawns")
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.process.is_alive():
            self._kill_process(worker)
        else:
            worker.process.join()
        fresh = self._spawn()
        worker.process, worker.conn, worker.task = fresh.process, fresh.conn, None

    @staticmethod
    def _kill_process(worker: _Worker) -> None:
        worker.process.terminate()
        worker.process.join(1.0)
        if worker.process.is_alive():
            worker.process.kill()
            worker.process.join()

    def shutdown(self, kill: bool = False) -> None:
        """Stop all workers; ``kill=True`` terminates busy ones immediately."""
        for worker in self._workers:
            if worker.task is None and not kill:
                try:
                    worker.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
        for worker in self._workers:
            if kill or worker.task is not None:
                self._kill_process(worker)
            else:
                worker.process.join(5.0)
                if worker.process.is_alive():
                    self._kill_process(worker)
            try:
                worker.conn.close()
            except OSError:
                pass
        self._workers = []

    def __enter__(self) -> "FaultTolerantPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(kill=any(exc_info))

    # -- scheduling --------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self._workers)

    def idle_workers(self) -> List[_Worker]:
        return [w for w in self._workers if w.task is None]

    def busy_count(self) -> int:
        return sum(1 for w in self._workers if w.task is not None)

    def submit(self, tag: Any, args: Tuple, timeout: Optional[float] = None) -> None:
        """Assign one task to an idle worker (caller ensures one is idle)."""
        for worker in self._workers:
            if worker.task is None:
                now = time.monotonic()
                worker.conn.send((tag, args))
                worker.task = _Task(
                    tag=tag,
                    deadline=(now + timeout) if timeout is not None else None,
                    started_at=now,
                )
                return
        raise RuntimeError("submit called with no idle worker")

    def next_deadline(self) -> Optional[float]:
        """Earliest monotonic deadline among busy workers, if any."""
        deadlines = [
            w.task.deadline
            for w in self._workers
            if w.task is not None and w.task.deadline is not None
        ]
        return min(deadlines) if deadlines else None

    # -- event collection --------------------------------------------------
    def wait(self, timeout: Optional[float] = None) -> List[PoolEvent]:
        """Block up to ``timeout`` s; return every task event that occurred.

        Detects, in one pass: normal results/errors (pipe messages), worker
        deaths (process sentinels with no pending message → ``crash``
        events, worker respawned) and expired task deadlines (worker
        killed and respawned → ``timeout`` events).
        """
        busy = [w for w in self._workers if w.task is not None]
        if not busy:
            return []
        now = time.monotonic()
        deadline = self.next_deadline()
        if deadline is not None:
            remaining = max(0.0, deadline - now)
            timeout = remaining if timeout is None else min(timeout, remaining)

        ready_map = {}
        for worker in busy:
            ready_map[worker.conn] = worker
            ready_map[worker.process.sentinel] = worker
        ready = multiprocessing.connection.wait(list(ready_map), timeout)

        events: List[PoolEvent] = []
        seen = set()
        for obj in ready:
            worker = ready_map[obj]
            if id(worker) in seen:
                continue
            seen.add(id(worker))
            events.extend(self._collect(worker))

        # Deadline sweep runs after message collection so a result that
        # arrived just in time beats its own timeout.
        now = time.monotonic()
        for worker in self._workers:
            task = worker.task
            if task is not None and task.deadline is not None and now >= task.deadline:
                if id(worker) not in seen and worker.conn.poll():
                    # The result raced the deadline and won.
                    events.extend(self._collect(worker))
                    continue
                worker.task = None
                self._respawn(worker)
                events.append(
                    PoolEvent(
                        kind="timeout",
                        tag=task.tag,
                        value=None,
                        elapsed_seconds=now - task.started_at,
                    )
                )
        return events

    def _collect(self, worker: _Worker) -> List[PoolEvent]:
        """Drain one ready worker: a message, a crash, or both-in-order."""
        events: List[PoolEvent] = []
        message = None
        dead = False
        try:
            if worker.conn.poll():
                message = worker.conn.recv()
        except (EOFError, OSError):
            dead = True
        if message is not None:
            kind, tag, value, elapsed = message
            worker.task = None
            events.append(
                PoolEvent(kind=kind, tag=tag, value=value, elapsed_seconds=elapsed)
            )
        if dead or not worker.process.is_alive():
            worker.process.join(0.1)
            task = worker.task
            exitcode = worker.process.exitcode
            worker.task = None
            self._respawn(worker)
            if task is not None:
                events.append(
                    PoolEvent(
                        kind="crash",
                        tag=task.tag,
                        value=exitcode,
                        elapsed_seconds=time.monotonic() - task.started_at,
                    )
                )
        return events
