"""Persistent JSON artifacts for completed sweep cells.

One artifact per cell, named
``<kind>__<circuit>__lam<lambda>[__y<target>]__<digest>.json`` (e.g.
``table1__c432__lam3.0__1a2b3c4d.json``) inside the sweep's results
directory::

    {
      "schema": 2,
      "key": "<sha256 over the canonical cell spec>",
      "spec": { ... },              # every input that shaped the result
      "result": { ... },            # Table1Row fields / Fig-4 moments
      "runtime_seconds": 12.3       # wall-clock of the producing worker
    }

``<digest>`` is a short prefix of the spec key, so every input that shapes
the result — including ``top_k``, ``monte_carlo_samples``, ``seed``,
substrates and the full sizer config — participates in the *filename*, not
just the stored key.  Without it, two criticality cells for the same
circuit (both ``lam=0.0``) would overwrite one file and defeat resume
forever.  A consequence: artifacts of superseded configurations are left
behind under their old digests rather than overwritten; they are inert
(resume only consults the current cell's path).

Resume semantics: a cell is skipped if and only if its artifact exists,
parses, carries the current schema number and its ``key`` equals the hash
of the *current* spec.  Artifacts are written atomically (temp file +
``os.replace``) so a killed sweep never leaves a half-written cell behind.
Artifacts that exist but are unreadable — truncated JSON, wrong schema,
missing fields — are distinguishable via :func:`load_artifact_status` so
the runner can quarantine them (rename to ``*.corrupt``) instead of
silently recomputing over them.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Union

#: Bump when the artifact layout or the result payloads change shape;
#: older artifacts are then quarantined/recomputed instead of trusted.
#: 2: filenames carry a spec-key digest (top_k/mc/seed collision fix).
ARTIFACT_SCHEMA = 2

#: Suffix appended to quarantined (corrupt or schema-mismatched) artifacts.
QUARANTINE_SUFFIX = ".corrupt"

#: Length of the spec-key digest embedded in artifact filenames.  8 hex
#: chars = 32 bits; collisions would additionally need every explicit
#: filename field to match, and are caught by the stored full key anyway.
DIGEST_LEN = 8


def spec_key(payload: Mapping[str, Any]) -> str:
    """Deterministic sha256 over a JSON-able spec payload."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def artifact_path(
    out_dir: Union[str, Path],
    kind: str,
    circuit: str,
    lam: float,
    target_yield: Optional[float] = None,
    digest: Optional[str] = None,
) -> Path:
    """Canonical artifact file for one sweep cell.

    The lambda (and, for yield cells, the target yield) is rendered with
    ``repr`` (shortest round-trip form), not ``%g`` — two values that differ
    only past the sixth significant digit must not collide on one file, or
    resume would recompute them forever.  ``digest`` (a spec-key prefix,
    see :meth:`repro.runner.sweep.CellSpec.artifact_path`) folds every
    remaining spec field into the name.
    """
    stem = f"{kind}__{circuit}__lam{lam!r}"
    if target_yield is not None:
        stem += f"__y{target_yield!r}"
    if digest:
        stem += f"__{digest}"
    return Path(out_dir) / f"{stem}.json"


def write_artifact(
    path: Union[str, Path],
    key: str,
    spec: Mapping[str, Any],
    result: Mapping[str, Any],
    runtime_seconds: float,
) -> None:
    """Atomically persist one completed cell."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": ARTIFACT_SCHEMA,
        "key": key,
        "spec": dict(spec),
        "result": dict(result),
        "runtime_seconds": float(runtime_seconds),
    }
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)


def load_artifact_status(
    path: Union[str, Path],
) -> Tuple[Optional[Dict[str, Any]], str]:
    """Load an artifact and say why it is (un)usable.

    Returns ``(payload, status)`` where status is one of

    * ``"ok"`` — payload is usable (but the caller still owns the key check);
    * ``"missing"`` — no file;
    * ``"schema"`` — parses, but written under a different schema number;
    * ``"corrupt"`` — unparsable JSON or a structurally-invalid payload.

    Only ``"ok"`` comes with a payload.
    """
    path = Path(path)
    if not path.is_file():
        return None, "missing"
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None, "corrupt"
    if not isinstance(payload, dict):
        return None, "corrupt"
    if payload.get("schema") != ARTIFACT_SCHEMA:
        return None, "schema"
    if not isinstance(payload.get("key"), str) or not isinstance(
        payload.get("result"), dict
    ):
        return None, "corrupt"
    return payload, "ok"


def load_artifact(path: Union[str, Path]) -> Optional[Dict[str, Any]]:
    """Load an artifact; ``None`` if missing, unparsable or schema-mismatched."""
    payload, _ = load_artifact_status(path)
    return payload


def quarantine_artifact(path: Union[str, Path]) -> Path:
    """Move a damaged artifact aside as ``<name>.json.corrupt``.

    The rename keeps the evidence for post-mortems while guaranteeing the
    cell recomputes (and rewrites a healthy artifact) on this run — a
    silently-ignored corrupt file would be re-parsed, and re-ignored, on
    every future resume.
    """
    path = Path(path)
    target = path.with_name(path.name + QUARANTINE_SUFFIX)
    os.replace(path, target)
    return target
