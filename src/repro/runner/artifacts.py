"""Persistent JSON artifacts for completed sweep cells.

One artifact per (kind, circuit, lambda) cell, named
``<kind>__<circuit>__lam<lambda>.json`` (e.g. ``table1__c432__lam3.0.json``)
inside the sweep's results directory::

    {
      "schema": 1,
      "key": "<sha256 over the canonical cell spec>",
      "spec": { ... },              # every input that shaped the result
      "result": { ... },            # Table1Row fields / Fig-4 moments
      "runtime_seconds": 12.3       # wall-clock of the producing worker
    }

Resume semantics: a cell is skipped if and only if its artifact exists,
parses, carries the current schema number and its ``key`` equals the hash
of the *current* spec.  Any change to the circuit, lambda, sizer
configuration, library/variation substrates, Monte-Carlo sample count or
seed changes the key and forces recomputation; stale artifacts are simply
overwritten.  Artifacts are written atomically (temp file + ``os.replace``)
so a killed sweep never leaves a half-written cell behind.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

#: Bump when the artifact layout or the result payloads change shape;
#: older artifacts are then recomputed instead of trusted.
ARTIFACT_SCHEMA = 1


def spec_key(payload: Mapping[str, Any]) -> str:
    """Deterministic sha256 over a JSON-able spec payload."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def artifact_path(
    out_dir: Union[str, Path],
    kind: str,
    circuit: str,
    lam: float,
    target_yield: Optional[float] = None,
) -> Path:
    """Canonical artifact file for one sweep cell.

    The lambda (and, for yield cells, the target yield) is rendered with
    ``repr`` (shortest round-trip form), not ``%g`` — two values that differ
    only past the sixth significant digit must not collide on one file, or
    resume would recompute them forever.
    """
    stem = f"{kind}__{circuit}__lam{lam!r}"
    if target_yield is not None:
        stem += f"__y{target_yield!r}"
    return Path(out_dir) / f"{stem}.json"


def write_artifact(
    path: Union[str, Path],
    key: str,
    spec: Mapping[str, Any],
    result: Mapping[str, Any],
    runtime_seconds: float,
) -> None:
    """Atomically persist one completed cell."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": ARTIFACT_SCHEMA,
        "key": key,
        "spec": dict(spec),
        "result": dict(result),
        "runtime_seconds": float(runtime_seconds),
    }
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)


def load_artifact(path: Union[str, Path]) -> Optional[Dict[str, Any]]:
    """Load an artifact; ``None`` if missing, unparsable or schema-mismatched."""
    path = Path(path)
    if not path.is_file():
        return None
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(payload, dict) or payload.get("schema") != ARTIFACT_SCHEMA:
        return None
    if not isinstance(payload.get("key"), str) or not isinstance(
        payload.get("result"), dict
    ):
        return None
    return payload
