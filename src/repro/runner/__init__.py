"""Parallel sweep orchestration with persistent, resumable artifacts.

The experiment layer regenerates the paper's evidence as grids of
independent (circuit, lambda) cells — Table 1 is 13 circuits x 2 lambdas,
Figure 4 is one circuit x 4 lambdas.  This package fans those cells across
a process pool, persists every completed cell as a JSON artifact keyed by a
hash of its full input spec, and on resume skips any cell whose artifact
still matches the current configuration.

* :mod:`repro.runner.artifacts` — artifact layout, spec hashing, load/save,
  quarantine of corrupt artifacts;
* :mod:`repro.runner.errors` — error taxonomy (retryable vs deterministic)
  and numerical-health guards;
* :mod:`repro.runner.pool` — crash-aware worker pool with per-task
  attribution and per-worker hang kills;
* :mod:`repro.runner.ledger` — structured failure ledger
  (``failures.json``) and interrupt checkpoint;
* :mod:`repro.runner.faults` — deterministic fault-injection harness
  (``REPRO_FAULTS``) used by the chaos test suite;
* :mod:`repro.runner.sweep` — cell specs, the per-cell evaluators (plain
  module-level functions so they pickle into worker processes) and the
  fault-tolerant :func:`~repro.runner.sweep.run_cells` orchestrator.

``repro.analysis.experiments`` drives its Table-1/Fig-4 runners through
this package, and the ``repro-sizer sweep`` CLI command exposes it
directly.
"""

from repro.runner.artifacts import (
    ARTIFACT_SCHEMA,
    QUARANTINE_SUFFIX,
    artifact_path,
    load_artifact,
    load_artifact_status,
    quarantine_artifact,
    spec_key,
    write_artifact,
)
from repro.runner.errors import (
    CellTimeoutError,
    NumericalHealthError,
    SweepInterrupted,
    TransientCellError,
    WorkerCrashError,
    classify_exception,
    is_retryable,
)
from repro.runner.faults import FAULTS_ENV, FaultRule, fault_env_value, parse_fault_rules
from repro.runner.ledger import (
    CHECKPOINT_FILENAME,
    LEDGER_FILENAME,
    FailureLedger,
    FailureRecord,
    QuarantineRecord,
    load_ledger,
)
from repro.runner.sweep import (
    CellResult,
    CellSpec,
    SubstrateSpec,
    SweepReport,
    config_with_lam,
    criticality_specs,
    evaluate_cell,
    fig4_specs,
    run_cells,
    table1_specs,
    yield_specs,
)

__all__ = [
    "ARTIFACT_SCHEMA",
    "QUARANTINE_SUFFIX",
    "artifact_path",
    "load_artifact",
    "load_artifact_status",
    "quarantine_artifact",
    "spec_key",
    "write_artifact",
    "CellTimeoutError",
    "NumericalHealthError",
    "SweepInterrupted",
    "TransientCellError",
    "WorkerCrashError",
    "classify_exception",
    "is_retryable",
    "FAULTS_ENV",
    "FaultRule",
    "fault_env_value",
    "parse_fault_rules",
    "CHECKPOINT_FILENAME",
    "LEDGER_FILENAME",
    "FailureLedger",
    "FailureRecord",
    "QuarantineRecord",
    "load_ledger",
    "CellResult",
    "CellSpec",
    "SubstrateSpec",
    "SweepReport",
    "config_with_lam",
    "criticality_specs",
    "evaluate_cell",
    "fig4_specs",
    "run_cells",
    "table1_specs",
    "yield_specs",
]
