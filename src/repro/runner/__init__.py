"""Parallel sweep orchestration with persistent, resumable artifacts.

The experiment layer regenerates the paper's evidence as grids of
independent (circuit, lambda) cells — Table 1 is 13 circuits x 2 lambdas,
Figure 4 is one circuit x 4 lambdas.  This package fans those cells across
a process pool, persists every completed cell as a JSON artifact keyed by a
hash of its full input spec, and on resume skips any cell whose artifact
still matches the current configuration.

* :mod:`repro.runner.artifacts` — artifact layout, spec hashing, load/save;
* :mod:`repro.runner.sweep` — cell specs, the per-cell evaluators (plain
  module-level functions so they pickle into worker processes) and the
  :func:`~repro.runner.sweep.run_cells` orchestrator.

``repro.analysis.experiments`` drives its Table-1/Fig-4 runners through
this package, and the ``repro-sizer sweep`` CLI command exposes it
directly.
"""

from repro.runner.artifacts import (
    ARTIFACT_SCHEMA,
    artifact_path,
    load_artifact,
    spec_key,
    write_artifact,
)
from repro.runner.sweep import (
    CellResult,
    CellSpec,
    SubstrateSpec,
    SweepReport,
    config_with_lam,
    criticality_specs,
    evaluate_cell,
    fig4_specs,
    run_cells,
    table1_specs,
    yield_specs,
)

__all__ = [
    "ARTIFACT_SCHEMA",
    "artifact_path",
    "load_artifact",
    "spec_key",
    "write_artifact",
    "CellResult",
    "CellSpec",
    "SubstrateSpec",
    "SweepReport",
    "config_with_lam",
    "criticality_specs",
    "evaluate_cell",
    "fig4_specs",
    "run_cells",
    "table1_specs",
    "yield_specs",
]
