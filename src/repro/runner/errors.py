"""Structured error taxonomy for fault-tolerant sweep execution.

The retry machinery in :mod:`repro.runner.sweep` must decide, for every
failed cell attempt, whether trying again can possibly help.  That decision
is driven by *categories*, not exception identity, because errors cross
process boundaries as ``(class name, message, traceback, category)`` tuples
— a live exception object raised inside a worker cannot be re-raised
faithfully in the parent.

Categories
----------
``transient``
    Resource exhaustion or an explicitly-transient failure
    (:class:`TransientCellError`, ``MemoryError``, interrupted I/O).
    Retrying after a backoff is worthwhile.
``timeout``
    The cell exceeded its wall-clock budget and its worker was killed
    (:class:`CellTimeoutError`, raised parent-side).  A hang is usually a
    scheduling/paging artifact, so timeouts retry.
``crash``
    The worker process died under the cell — OOM-killed, segfaulted or
    ``os._exit`` (:class:`WorkerCrashError`, raised parent-side).  Crashes
    retry: the most common real cause is the OS reclaiming memory.
``deterministic``
    Everything else — bad circuit names, numerical-health violations,
    plain bugs.  Retrying would reproduce the failure, so these fail the
    cell immediately.
"""

from __future__ import annotations

import math
from typing import Any, Optional


class TransientCellError(RuntimeError):
    """A cell failure that is expected to heal on retry.

    Evaluators (and the fault-injection harness) raise this to mark a
    failure as retryable; anything else they raise is treated as
    deterministic.
    """


class DeterministicError(RuntimeError):
    """A failure the same inputs will always reproduce; never retried.

    The explicit counterpart of :class:`TransientCellError`: raised when a
    defect is *provably* input-determined — most prominently by the
    pre-flight DRC hooks (:class:`repro.verify.preflight.PreflightError`),
    which fail a defective netlist before any worker is spawned.
    """


class CellTimeoutError(TransientCellError):
    """Raised parent-side when a cell exceeds its wall-clock budget."""


class WorkerCrashError(TransientCellError):
    """Raised parent-side when the worker process evaluating a cell died."""


class NumericalHealthError(ValueError):
    """An engine produced NaN/inf moments or a negative sigma.

    Raised by the finite-moment guards in :mod:`repro.flow` and
    :func:`repro.runner.sweep.evaluate_cell` so numerically-poisoned
    results fail loudly instead of propagating silently into artifacts.
    Deterministic by definition — the same inputs reproduce it.
    """


class SweepInterrupted(KeyboardInterrupt):
    """SIGINT landed during a sweep; in-flight cells were drained first.

    Subclasses ``KeyboardInterrupt`` so generic ``except Exception``
    handlers cannot swallow a user interrupt, while callers that care
    (the CLI) can catch it specifically and report the partial progress
    carried in ``report`` (a :class:`repro.runner.sweep.SweepReport`).
    """

    def __init__(self, message: str, report: Optional[Any] = None) -> None:
        super().__init__(message)
        self.report: Optional[Any] = report


#: Categories whose failures are worth retrying (see module docstring).
RETRYABLE_CATEGORIES = frozenset({"transient", "timeout", "crash"})


def classify_exception(exc: BaseException) -> str:
    """Map a live exception onto its retry category."""
    if isinstance(exc, CellTimeoutError):
        return "timeout"
    if isinstance(exc, WorkerCrashError):
        return "crash"
    if isinstance(exc, TransientCellError):
        return "transient"
    if isinstance(exc, DeterministicError):
        return "deterministic"
    if isinstance(exc, (MemoryError, BlockingIOError, InterruptedError)):
        return "transient"
    return "deterministic"


def is_retryable(category: str) -> bool:
    return category in RETRYABLE_CATEGORIES


def ensure_finite_moments(
    mean: float, sigma: float, context: str, area: Optional[float] = None
) -> None:
    """Raise :class:`NumericalHealthError` unless the moments are healthy.

    Healthy means finite mean and sigma, ``sigma >= 0`` and (when given) a
    finite, non-negative area.
    """
    if not math.isfinite(mean) or not math.isfinite(sigma):
        raise NumericalHealthError(
            f"{context}: non-finite moments mean={mean!r} sigma={sigma!r}"
        )
    if sigma < 0:
        raise NumericalHealthError(f"{context}: negative sigma {sigma!r}")
    if area is not None and (not math.isfinite(area) or area < 0):
        raise NumericalHealthError(f"{context}: unhealthy area {area!r}")


def check_payload_health(payload: object, context: str) -> None:
    """Recursively reject NaN/inf numbers (and negative sigmas) in a payload.

    Used on every cell-result dict before it is persisted: a poisoned value
    anywhere in the artifact would silently corrupt downstream tables.
    Keys naming a sigma moment (``sigma`` / ``*_sigma``) must additionally
    be non-negative; percentage deltas like ``sigma_reduction_pct`` are
    legitimately negative and are not constrained.
    """
    _check_health(payload, context)


def _is_sigma_key(context: str) -> bool:
    leaf = context.rpartition(".")[2]
    return leaf == "sigma" or leaf.endswith("_sigma")


def _check_health(value: object, context: str) -> None:
    if isinstance(value, bool):
        return
    if isinstance(value, (int, float)):
        if not math.isfinite(value):
            raise NumericalHealthError(f"{context}: non-finite value {value!r}")
        if value < 0 and _is_sigma_key(context):
            raise NumericalHealthError(f"{context}: negative sigma {value!r}")
        return
    if isinstance(value, dict):
        for key, item in value.items():
            _check_health(item, f"{context}.{key}")
    elif isinstance(value, (list, tuple)):
        for i, item in enumerate(value):
            _check_health(item, f"{context}[{i}]")
