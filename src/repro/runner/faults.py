"""Deterministic fault injection for chaos-testing the sweep runner.

Real worker processes are separate interpreters, so the injection spec
travels through the environment variable ``REPRO_FAULTS`` — a JSON list of
rules set by the parent before the pool spawns — and is consulted by
:func:`repro.runner.sweep.evaluate_cell` at the top of every attempt.  That
makes the harness reach the exact code path production failures hit: a
``crash`` rule really kills the worker process, a ``hang`` rule really
wedges it until the parent's timeout fires.

Rule format (all matcher fields optional; omitted fields match anything)::

    [{"mode": "crash",     "circuit": "c17", "lam": 3.0, "attempts": [0]},
     {"mode": "hang",      "circuit": "c17", "lam": 9.0, "seconds": 3600},
     {"mode": "transient", "kind": "table1", "attempts": [0, 1]},
     {"mode": "corrupt",   "circuit": "alu1"},
     {"mode": "transient", "probability": 0.25, "seed": 7}]

* ``mode`` — ``crash`` (``os._exit``), ``hang`` (sleep ``seconds``),
  ``transient`` (raise :class:`~repro.runner.errors.TransientCellError`)
  or ``corrupt`` (garble the artifact after it is written; applied
  parent-side by :func:`corrupt_artifact_if_injected`).
* ``attempts`` — zero-based attempt numbers to inject on (default: every
  attempt).  ``"attempts": [0, 1]`` is the canonical "heals on retry 2".
* ``probability`` / ``seed`` — seeded probabilistic injection: the draw is
  a pure hash of ``(seed, cell key, attempt)``, so a given sweep injects
  the same faults on every run regardless of scheduling.

Everything is deterministic by construction; no injector consults wall
clock or global RNG state.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Tuple, Union

from repro.runner.errors import TransientCellError

#: Environment variable carrying the JSON-encoded rule list into workers.
FAULTS_ENV = "REPRO_FAULTS"

#: Injection modes applied inside ``evaluate_cell`` (worker-side).
EVALUATION_MODES = ("crash", "hang", "transient")
#: All modes, including the parent-side artifact corruptor.
MODES = EVALUATION_MODES + ("corrupt",)


@dataclass(frozen=True)
class FaultRule:
    """One injection rule; see the module docstring for the JSON form."""

    mode: str
    circuit: Optional[str] = None
    kind: Optional[str] = None
    lam: Optional[float] = None
    target_yield: Optional[float] = None
    attempts: Optional[Tuple[int, ...]] = None
    probability: float = 1.0
    seed: int = 0
    seconds: float = 3600.0
    exit_code: int = 13

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"unknown fault mode {self.mode!r}; expected one of {MODES}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")

    def matches(self, spec, attempt: int) -> bool:
        """Does this rule fire for ``spec`` on its ``attempt``-th try?"""
        if self.circuit is not None and spec.circuit != self.circuit:
            return False
        if self.kind is not None and spec.kind != self.kind:
            return False
        if self.lam is not None and float(spec.lam) != float(self.lam):
            return False
        if self.target_yield is not None and spec.target_yield != self.target_yield:
            return False
        if self.attempts is not None and attempt not in self.attempts:
            return False
        if self.probability < 1.0:
            return _seeded_draw(self.seed, spec.key(), attempt) < self.probability
        return True


def _seeded_draw(seed: int, cell_key: str, attempt: int) -> float:
    """Uniform [0, 1) draw that is a pure function of its arguments."""
    digest = hashlib.sha256(f"{seed}:{cell_key}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def parse_fault_rules(text: str) -> Tuple[FaultRule, ...]:
    """Parse the JSON rule list (raises ``ValueError`` on malformed specs)."""
    try:
        raw = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"malformed {FAULTS_ENV} JSON: {exc}") from exc
    if not isinstance(raw, list):
        raise ValueError(f"{FAULTS_ENV} must be a JSON list of rule objects")
    rules = []
    for entry in raw:
        if not isinstance(entry, dict) or "mode" not in entry:
            raise ValueError(f"fault rule must be an object with a 'mode': {entry!r}")
        kwargs = dict(entry)
        if "attempts" in kwargs and kwargs["attempts"] is not None:
            kwargs["attempts"] = tuple(int(a) for a in kwargs["attempts"])
        rules.append(FaultRule(**kwargs))
    return tuple(rules)


def fault_env_value(rules: Sequence[Union[FaultRule, dict]]) -> str:
    """Serialize rules to the ``REPRO_FAULTS`` value (for tests and CI)."""
    payload = []
    for rule in rules:
        if isinstance(rule, FaultRule):
            entry = {
                key: value
                for key, value in rule.__dict__.items()
                if value is not None
            }
            if "attempts" in entry:
                entry["attempts"] = list(entry["attempts"])
        else:
            entry = dict(rule)
        payload.append(entry)
    return json.dumps(payload)


#: Memo of the last parsed env value, so the per-attempt lookup is one
#: string compare when injection is active and one dict lookup when not.
_CACHED: Tuple[Optional[str], Tuple[FaultRule, ...]] = (None, ())


def active_rules() -> Tuple[FaultRule, ...]:
    """The rules currently configured through the environment (memoized)."""
    global _CACHED
    text = os.environ.get(FAULTS_ENV)
    if not text:
        return ()
    cached_text, cached_rules = _CACHED
    if text != cached_text:
        _CACHED = (text, parse_fault_rules(text))
    return _CACHED[1]


def inject_evaluation_faults(spec, attempt: int) -> None:
    """Apply the first matching crash/hang/transient rule, if any.

    Called at the top of every ``evaluate_cell`` attempt — in the worker
    process for parallel sweeps, in-process for serial ones (where a
    ``crash`` rule would take down the whole run; chaos tests only inject
    crashes with ``jobs > 1``).
    """
    for rule in active_rules():
        if rule.mode not in EVALUATION_MODES or not rule.matches(spec, attempt):
            continue
        if rule.mode == "crash":
            # A real crash: no exception, no cleanup, no exit handlers —
            # indistinguishable from an OOM kill as far as the parent sees.
            os._exit(rule.exit_code)
        if rule.mode == "hang":
            time.sleep(rule.seconds)
            return
        raise TransientCellError(
            f"injected transient fault (attempt {attempt}) for "
            f"{spec.kind} {spec.circuit}"
        )


def corrupt_artifact_if_injected(spec, attempt: int, path: Union[str, Path]) -> bool:
    """Garble a freshly-written artifact when a ``corrupt`` rule matches.

    Simulates a torn/bit-rotted write *after* the atomic rename (the kind
    of damage quarantine exists for).  Returns True when corruption was
    injected.
    """
    path = Path(path)
    for rule in active_rules():
        if rule.mode == "corrupt" and rule.matches(spec, attempt) and path.is_file():
            text = path.read_text()
            path.write_text(text[: max(4, len(text) // 3)] + '"<<corrupted')
            return True
    return False
