"""Structured failure ledger and interrupt checkpoint for sweeps.

Every failed cell attempt — whether it later healed on retry or finally
failed — is recorded as a :class:`FailureRecord` and persisted to
``<out_dir>/failures.json`` so a multi-hour campaign leaves an auditable
trail instead of a scrolled-away traceback::

    {
      "schema": 1,
      "events": [
        {"cell": "table1__c17__lam3.0__1a2b3c4d", "key": "...",
         "kind": "table1", "circuit": "c17", "lam": 3.0,
         "target_yield": null, "attempt": 0, "category": "transient",
         "error": "TransientCellError", "message": "...",
         "traceback": "...", "elapsed_seconds": 0.8, "retried": true,
         "timestamp": "2026-08-08T12:00:00+00:00"},
        ...
      ],
      "quarantines": [
        {"artifact": "table1__c17__lam3.0__1a2b3c4d.json",
         "quarantined_as": "table1__...json.corrupt", "reason": "corrupt",
         "timestamp": "..."},
        ...
      ]
    }

The ledger file is rewritten atomically after every event; failures are
rare, so the rewrite cost is irrelevant next to cell runtimes.  On SIGINT
the runner additionally writes ``checkpoint.json`` describing the partial
sweep (completed / failed / pending cells), making the interruption
resumable and auditable.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

#: Bump when the ledger layout changes shape.
LEDGER_SCHEMA = 1

#: Name of the ledger file inside a sweep's artifact directory.
LEDGER_FILENAME = "failures.json"
#: Name of the interrupt checkpoint file.
CHECKPOINT_FILENAME = "checkpoint.json"


def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


@dataclass
class FailureRecord:
    """One failed attempt of one cell."""

    cell: str                      #: artifact stem identifying the cell
    key: str                       #: sha256 spec key
    kind: str
    circuit: str
    lam: float
    target_yield: Optional[float]
    attempt: int                   #: zero-based attempt number that failed
    category: str                  #: transient / timeout / crash / deterministic
    error: str                     #: exception class name
    message: str
    traceback: str
    elapsed_seconds: float
    retried: bool = False          #: whether another attempt was scheduled
    timestamp: str = field(default_factory=_utc_now)

    def as_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclass
class QuarantineRecord:
    """One corrupt/schema-mismatched artifact moved out of the way."""

    artifact: str
    quarantined_as: str
    reason: str                    #: corrupt / schema
    timestamp: str = field(default_factory=_utc_now)

    def as_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


class FailureLedger:
    """Collects failure/quarantine events; persists them when given a path."""

    def __init__(self, path: Optional[Union[str, Path]] = None) -> None:
        self.path = Path(path) if path is not None else None
        self.events: List[FailureRecord] = []
        self.quarantines: List[QuarantineRecord] = []

    def record_failure(self, record: FailureRecord) -> None:
        self.events.append(record)
        self.flush()

    def record_quarantine(self, record: QuarantineRecord) -> None:
        self.quarantines.append(record)
        self.flush()

    def mark_retried(self, record: FailureRecord) -> None:
        """Flag an already-recorded failure as healed-by-retry-scheduling."""
        record.retried = True
        self.flush()

    def flush(self) -> None:
        if self.path is None:
            return
        payload = {
            "schema": LEDGER_SCHEMA,
            "events": [event.as_dict() for event in self.events],
            "quarantines": [q.as_dict() for q in self.quarantines],
        }
        _atomic_write_json(self.path, payload)


def load_ledger(path: Union[str, Path]) -> Optional[Dict[str, Any]]:
    """Read a ledger file; ``None`` if missing or unparsable."""
    path = Path(path)
    if not path.is_file():
        return None
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(payload, dict) or payload.get("schema") != LEDGER_SCHEMA:
        return None
    return payload


def write_checkpoint(path: Union[str, Path], payload: Dict[str, Any]) -> None:
    """Atomically persist the interrupt checkpoint."""
    _atomic_write_json(Path(path), {"schema": LEDGER_SCHEMA, **payload})


def _atomic_write_json(path: Path, payload: Dict[str, Any]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)
