"""Process-pool sweep orchestrator for (circuit, lambda) experiment grids.

Every cell of a Table-1 or Fig-4 sweep is an independent job: build the
benchmark, size it for minimum mean delay, re-size it statistically at one
lambda, and measure the before/after moments.  :func:`run_cells` executes a
list of such cells either serially (``jobs=1`` — the exact code path the
single-process experiment runners always used) or across a
``ProcessPoolExecutor``, persisting each completed cell through
:mod:`repro.runner.artifacts` and skipping cells whose artifact already
matches the current spec when ``resume=True``.

Cell specs and the evaluators are plain module-level dataclasses/functions
so they pickle cleanly into worker processes.  Results are deterministic —
the sizing flow has no randomness outside the seeded Monte-Carlo validator
— so serial and parallel sweeps produce identical rows (pinned by
``tests/runner/test_sweep.py``); only the recorded wall-clock runtimes
differ.
"""

from __future__ import annotations

import dataclasses
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.circuits.registry import build_benchmark
from repro.core.sizer import SizerConfig
from repro.library.delay_model import LookupTableDelayModel
from repro.library.synthetic90nm import make_synthetic_90nm_library
from repro.runner.artifacts import (
    artifact_path,
    load_artifact,
    spec_key,
    write_artifact,
)
from repro.variation.model import VariationModel

#: Cell kinds understood by :func:`evaluate_cell`.
KINDS = ("table1", "fig4", "yield", "criticality")


def config_with_lam(config: Optional[SizerConfig], lam: float) -> SizerConfig:
    """The sizer configuration for one sweep cell.

    Preserves every caller-chosen field (``subcircuit_depth``,
    ``max_iterations``, ...) and only swaps the lambda — the historical
    behavior of silently replacing a mismatched config with a default
    ``SizerConfig(lam=lam)`` dropped all of them.
    """
    if config is None:
        return SizerConfig(lam=lam)
    if config.lam == lam:
        return config
    return dataclasses.replace(config, lam=lam)


@dataclass(frozen=True)
class SubstrateSpec:
    """Picklable recipe for the library / delay / variation substrates.

    The CLI's ``--sizes-per-cell / --alpha / --random-sigma`` options map
    onto these fields, so a sweep cell carries the exact substrates it must
    be evaluated with (and they participate in the artifact key).
    """

    sizes_per_cell: int = 7
    proportional_alpha: float = 0.6
    random_sigma: float = 2.0

    def build(self) -> Tuple[Any, Any, Any]:
        """Instantiate (library, delay_model, variation_model)."""
        library = make_synthetic_90nm_library(sizes_per_cell=self.sizes_per_cell)
        delay_model = LookupTableDelayModel(library)
        variation_model = VariationModel(
            proportional_alpha=self.proportional_alpha,
            random_sigma=self.random_sigma,
        )
        return library, delay_model, variation_model


@dataclass(frozen=True)
class CellSpec:
    """One (circuit, lambda) cell of a sweep, fully self-describing.

    ``yield`` cells sweep a target yield instead of a lambda: their
    ``target_yield`` is set, their ``lam`` is fixed at 0.0 (the weight is
    derived from the target inside the sizer) and the artifact filename
    carries the target so different targets never collide.

    ``criticality`` cells analyse the mean-delay-sized design's statistical
    criticality (per-gate probabilities, top-``top_k`` paths, optional
    Monte-Carlo agreement) instead of running the statistical sizer; their
    ``lam`` is likewise fixed at 0.0.
    """

    kind: str
    circuit: str
    lam: float
    sizer_config: Optional[SizerConfig] = None
    monte_carlo_samples: int = 0
    seed: int = 0
    substrates: SubstrateSpec = SubstrateSpec()
    target_yield: Optional[float] = None
    top_k: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown cell kind {self.kind!r}; expected one of {KINDS}")
        if self.kind == "yield" and self.target_yield is None:
            raise ValueError("yield cells need a target_yield")
        if self.top_k is not None and self.top_k < 1:
            raise ValueError("top_k must be >= 1")
        # Normalize so lam=3 and lam=3.0 describe the same cell: both the
        # artifact filename and the json-encoded key payload must agree, or
        # resume would recompute (and duplicate) semantically identical cells.
        object.__setattr__(self, "lam", float(self.lam))
        if self.target_yield is not None:
            object.__setattr__(self, "target_yield", float(self.target_yield))

    def payload(self) -> Dict[str, Any]:
        """Canonical JSON-able description of every input shaping the result."""
        sizer_config = dataclasses.asdict(
            config_with_lam(self.sizer_config, self.lam)
        )
        sizer_config["lam"] = float(sizer_config["lam"])
        return {
            "kind": self.kind,
            "circuit": self.circuit,
            "lam": self.lam,
            "target_yield": self.target_yield,
            "top_k": self.top_k,
            "sizer_config": sizer_config,
            "monte_carlo_samples": self.monte_carlo_samples,
            "seed": self.seed,
            "substrates": dataclasses.asdict(self.substrates),
        }

    def key(self) -> str:
        return spec_key(self.payload())


@dataclass
class CellResult:
    """Outcome of one cell: the result payload plus provenance."""

    spec: CellSpec
    key: str
    result: Dict[str, Any]
    runtime_seconds: float
    from_cache: bool = False

    def table1_row(self) -> "Table1Row":
        """Reconstruct the Table-1 row of a ``kind == "table1"`` cell."""
        # Imported lazily: repro.analysis re-exports the experiment runners,
        # which drive this module — a top-level import would be circular.
        from repro.analysis.metrics import Table1Row

        if self.spec.kind != "table1":
            raise ValueError(f"cell kind is {self.spec.kind!r}, not 'table1'")
        return Table1Row(**self.result)


@dataclass
class SweepReport:
    """Summary of one :func:`run_cells` invocation."""

    results: List[CellResult]
    computed: int
    skipped: int
    wall_seconds: float
    jobs: int
    out_dir: Optional[Path]

    def summary(self) -> str:
        parts = [
            f"{len(self.results)} cell(s): {self.computed} computed, "
            f"{self.skipped} reused from artifacts",
            f"wall {self.wall_seconds:.1f} s with jobs={self.jobs}",
        ]
        if self.out_dir is not None:
            parts.append(f"artifacts in {self.out_dir}")
        return "; ".join(parts)


# ---------------------------------------------------------------------------
# Spec builders
# ---------------------------------------------------------------------------
def table1_specs(
    circuit_names: Sequence[str],
    lams: Sequence[float],
    sizer_config: Optional[SizerConfig] = None,
    substrates: Optional[SubstrateSpec] = None,
    monte_carlo_samples: int = 0,
    seed: int = 0,
) -> List[CellSpec]:
    """The (circuit, lambda) grid of a Table-1 regeneration."""
    substrates = substrates or SubstrateSpec()
    return [
        CellSpec(
            kind="table1",
            circuit=name,
            lam=lam,
            sizer_config=config_with_lam(sizer_config, lam),
            monte_carlo_samples=monte_carlo_samples,
            seed=seed,
            substrates=substrates,
        )
        for name in circuit_names
        for lam in lams
    ]


def fig4_specs(
    circuit_name: str,
    lams: Sequence[float],
    sizer_config: Optional[SizerConfig] = None,
    substrates: Optional[SubstrateSpec] = None,
) -> List[CellSpec]:
    """One circuit swept across lambda values (the Fig. 4 trade-off curve)."""
    substrates = substrates or SubstrateSpec()
    return [
        CellSpec(
            kind="fig4",
            circuit=circuit_name,
            lam=lam,
            sizer_config=config_with_lam(sizer_config, lam),
            substrates=substrates,
        )
        for lam in lams
    ]


def yield_specs(
    circuit_names: Sequence[str],
    target_yields: Sequence[float],
    sizer_config: Optional[SizerConfig] = None,
    substrates: Optional[SubstrateSpec] = None,
) -> List[CellSpec]:
    """The (circuit, target_yield) grid of a yield-objective sweep.

    Each cell sizes its circuit for the minimum clock period achieving the
    target yield.  ``sizer_config`` supplies the budget knobs
    (``max_iterations``, ``pdf_samples``, ...); its objective, target and
    lambda are overridden per cell.
    """
    substrates = substrates or SubstrateSpec()
    base = sizer_config or SizerConfig()
    return [
        CellSpec(
            kind="yield",
            circuit=name,
            lam=0.0,
            sizer_config=dataclasses.replace(
                base, lam=0.0, objective="yield", target_yield=float(target)
            ),
            substrates=substrates,
            target_yield=target,
        )
        for name in circuit_names
        for target in target_yields
    ]


def criticality_specs(
    circuit_names: Sequence[str],
    top_k: int = 5,
    monte_carlo_samples: int = 0,
    seed: int = 0,
    substrates: Optional[SubstrateSpec] = None,
) -> List[CellSpec]:
    """One criticality-analysis cell per circuit.

    Each cell sizes its circuit for minimum mean delay (the common starting
    point of every sweep kind), computes the analytic gate criticalities and
    the top-``top_k`` statistical paths, and — when ``monte_carlo_samples``
    is positive — cross-checks them against empirical critical-path
    frequencies.
    """
    substrates = substrates or SubstrateSpec()
    return [
        CellSpec(
            kind="criticality",
            circuit=name,
            lam=0.0,
            monte_carlo_samples=monte_carlo_samples,
            seed=seed,
            substrates=substrates,
            top_k=top_k,
        )
        for name in circuit_names
    ]


# ---------------------------------------------------------------------------
# Per-cell evaluators (module-level so they pickle into workers)
# ---------------------------------------------------------------------------
def _evaluate_table1(spec: CellSpec) -> Dict[str, Any]:
    from repro.analysis.metrics import Table1Row
    from repro.flow import run_sizing_flow

    circuit = build_benchmark(spec.circuit)
    library, delay_model, variation_model = spec.substrates.build()
    flow = run_sizing_flow(
        circuit,
        lam=spec.lam,
        library=library,
        delay_model=delay_model,
        variation_model=variation_model,
        sizer_config=config_with_lam(spec.sizer_config, spec.lam),
        monte_carlo_samples=spec.monte_carlo_samples,
        seed=spec.seed,
    )
    return dataclasses.asdict(Table1Row.from_flow(spec.circuit, flow))


#: Per-process memo of the deterministic fig4 baseline, keyed by
#: (circuit, substrates): (sizes, original mean, original sigma).  Serial
#: sweeps derive the mean-delay starting point once per circuit instead of
#: once per lambda; workers warm their own copy on first use.  MeanDelaySizer
#: is deterministic, so the memo never changes any result.
_FIG4_BASELINES: Dict[Tuple[str, SubstrateSpec], Tuple[Dict[str, int], float, float]] = {}


def _evaluate_fig4(spec: CellSpec) -> Dict[str, Any]:
    from repro.core.baseline import MeanDelaySizer
    from repro.core.fullssta import FULLSSTA
    from repro.core.rv import NormalDelay
    from repro.core.sizer import StatisticalGreedySizer

    library, delay_model, variation_model = spec.substrates.build()
    circuit = build_benchmark(spec.circuit)
    fullssta = FULLSSTA(delay_model, variation_model)
    memo_key = (spec.circuit, spec.substrates)
    cached = _FIG4_BASELINES.get(memo_key)
    if cached is None:
        MeanDelaySizer(delay_model).optimize(circuit)
        original = fullssta.analyze(circuit).output_rv
        _FIG4_BASELINES[memo_key] = (
            dict(circuit.sizes()), original.mean, original.sigma
        )
    else:
        sizes, mean, sigma = cached
        circuit.apply_sizes(sizes)
        original = NormalDelay(mean, sigma)
    if spec.lam > 0:
        config = config_with_lam(spec.sizer_config, spec.lam)
        StatisticalGreedySizer(delay_model, variation_model, config).optimize(circuit)
        final = fullssta.analyze(circuit).output_rv
    else:
        final = original
    return {
        "circuit": spec.circuit,
        "lam": spec.lam,
        "original_mean": original.mean,
        "original_sigma": original.sigma,
        "mean": final.mean,
        "sigma": final.sigma,
        "area": delay_model.circuit_area(circuit),
    }


def _evaluate_yield(spec: CellSpec) -> Dict[str, Any]:
    from repro.flow import run_sizing_flow

    circuit = build_benchmark(spec.circuit)
    library, delay_model, variation_model = spec.substrates.build()
    config = dataclasses.replace(
        config_with_lam(spec.sizer_config, spec.lam),
        objective="yield",
        target_yield=spec.target_yield,
    )
    flow = run_sizing_flow(
        circuit,
        lam=config.lam,
        library=library,
        delay_model=delay_model,
        variation_model=variation_model,
        sizer_config=config,
    )
    result: Dict[str, Any] = {
        "circuit": spec.circuit,
        "original_mean": flow.original_rv.mean,
        "original_sigma": flow.original_rv.sigma,
        "mean": flow.final_rv.mean,
        "sigma": flow.final_rv.sigma,
        "area": flow.final_area,
        "original_area": flow.original_area,
    }
    result.update(flow.yield_summary(spec.target_yield))
    return result


def _evaluate_criticality(spec: CellSpec) -> Dict[str, Any]:
    from repro.core.baseline import MeanDelaySizer
    from repro.core.fassta import FASSTA
    from repro.criticality import (
        CriticalityAnalyzer,
        MonteCarloCriticality,
        extract_top_paths,
        total_path_mass,
    )

    circuit = build_benchmark(spec.circuit)
    _, delay_model, variation_model = spec.substrates.build()
    MeanDelaySizer(delay_model).optimize(circuit)
    analysis = FASSTA(delay_model, variation_model, vectorized=True).analyze(circuit)
    crit = CriticalityAnalyzer(circuit).analyze(analysis.arrivals)
    top_k = spec.top_k or 5
    paths = extract_top_paths(circuit, crit, analysis.arrivals, k=top_k)
    result: Dict[str, Any] = {
        "circuit": spec.circuit,
        "gates": circuit.num_gates(),
        "source_mass": crit.total_source_mass(),
        "top_path_mass": total_path_mass(paths),
        "top_paths": [
            {
                "output": path.output_net,
                "source": path.source_net,
                "criticality": path.criticality,
                "length": len(path.gates),
                "exact": path.exact,
            }
            for path in paths
        ],
    }
    if spec.monte_carlo_samples > 0:
        mc = MonteCarloCriticality(delay_model, variation_model).run(
            circuit,
            num_samples=spec.monte_carlo_samples,
            seed=spec.seed,
            paths=paths,
        )
        result["mc_max_abs_gate_error"] = mc.max_abs_gate_error(
            crit.gate_criticality
        )
        result["mc_mean_abs_gate_error"] = mc.mean_abs_gate_error(
            crit.gate_criticality
        )
        result["mc_path_frequency"] = list(mc.path_frequency)
    return result


_EVALUATORS: Dict[str, Callable[[CellSpec], Dict[str, Any]]] = {
    "table1": _evaluate_table1,
    "fig4": _evaluate_fig4,
    "yield": _evaluate_yield,
    "criticality": _evaluate_criticality,
}


def evaluate_cell(spec: CellSpec) -> CellResult:
    """Run one sweep cell to completion (this is the worker entry point)."""
    start = time.perf_counter()
    result = _EVALUATORS[spec.kind](spec)
    runtime = time.perf_counter() - start
    return CellResult(spec=spec, key=spec.key(), result=result, runtime_seconds=runtime)


# ---------------------------------------------------------------------------
# Orchestration
# ---------------------------------------------------------------------------
ProgressFn = Callable[[int, int, CellResult], None]


def run_cells(
    specs: Sequence[CellSpec],
    jobs: int = 1,
    out_dir: Optional[Union[str, Path]] = None,
    resume: bool = False,
    progress: Optional[ProgressFn] = None,
) -> SweepReport:
    """Execute sweep cells, optionally in parallel and resumably.

    Parameters
    ----------
    specs:
        The cells to run; results come back in the same order.
    jobs:
        ``1`` runs everything in-process (no executor involved); ``> 1``
        fans pending cells across a ``ProcessPoolExecutor``.
    out_dir:
        Results directory for per-cell JSON artifacts.  ``None`` disables
        persistence (and therefore resume).
    resume:
        Skip cells whose artifact exists under ``out_dir`` and whose stored
        key matches the current spec hash.
    progress:
        Optional callback invoked as ``progress(done, total, result)``
        after every cell (cached or computed), in completion order.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    start = time.perf_counter()
    out_path = Path(out_dir) if out_dir is not None else None
    if out_path is not None:
        out_path.mkdir(parents=True, exist_ok=True)

    total = len(specs)
    results: List[Optional[CellResult]] = [None] * total
    done = 0
    pending: List[int] = []
    for i, spec in enumerate(specs):
        cached = None
        if resume and out_path is not None:
            artifact = load_artifact(
                artifact_path(
                    out_path, spec.kind, spec.circuit, spec.lam, spec.target_yield
                )
            )
            if artifact is not None and artifact["key"] == spec.key():
                cached = CellResult(
                    spec=spec,
                    key=artifact["key"],
                    result=artifact["result"],
                    runtime_seconds=float(artifact.get("runtime_seconds", 0.0)),
                    from_cache=True,
                )
        if cached is not None:
            results[i] = cached
            done += 1
            if progress is not None:
                progress(done, total, cached)
        else:
            pending.append(i)

    def _finish(index: int, result: CellResult) -> None:
        nonlocal done
        results[index] = result
        if out_path is not None:
            write_artifact(
                artifact_path(out_path, result.spec.kind, result.spec.circuit,
                              result.spec.lam, result.spec.target_yield),
                key=result.key,
                spec=result.spec.payload(),
                result=result.result,
                runtime_seconds=result.runtime_seconds,
            )
        done += 1
        if progress is not None:
            progress(done, total, result)

    # A failing cell must not discard its siblings: every other cell still
    # runs, completed cells persist to artifacts (so a later --resume only
    # pays for the failures), and the errors are reported together at the end.
    errors: List[Tuple[CellSpec, BaseException]] = []
    if jobs == 1 or len(pending) <= 1:
        for i in pending:
            try:
                result = evaluate_cell(specs[i])
            except Exception as exc:
                errors.append((specs[i], exc))
                continue
            _finish(i, result)
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures = {pool.submit(evaluate_cell, specs[i]): i for i in pending}
            for future in as_completed(futures):
                i = futures[future]
                try:
                    result = future.result()
                except Exception as exc:
                    errors.append((specs[i], exc))
                    continue
                _finish(i, result)

    if errors:
        details = "; ".join(
            f"{spec.kind} {spec.circuit} lam={spec.lam:g}: {exc}"
            for spec, exc in errors
        )
        raise RuntimeError(
            f"{len(errors)} of {total} sweep cell(s) failed ({details})"
            + ("; completed cells were persisted to artifacts"
               if out_path is not None else "")
        )

    return SweepReport(
        results=[r for r in results if r is not None],
        computed=len(pending),
        skipped=total - len(pending),
        wall_seconds=time.perf_counter() - start,
        jobs=jobs,
        out_dir=out_path,
    )
