"""Process-pool sweep orchestrator for (circuit, lambda) experiment grids.

Every cell of a Table-1 or Fig-4 sweep is an independent job: build the
benchmark, size it for minimum mean delay, re-size it statistically at one
lambda, and measure the before/after moments.  :func:`run_cells` executes a
list of such cells either serially (``jobs=1`` — the exact code path the
single-process experiment runners always used) or across a
``ProcessPoolExecutor``, persisting each completed cell through
:mod:`repro.runner.artifacts` and skipping cells whose artifact already
matches the current spec when ``resume=True``.

Cell specs and the evaluators are plain module-level dataclasses/functions
so they pickle cleanly into worker processes.  Results are deterministic —
the sizing flow has no randomness outside the seeded Monte-Carlo validator
— so serial and parallel sweeps produce identical rows (pinned by
``tests/runner/test_sweep.py``); only the recorded wall-clock runtimes
differ.

Fault tolerance
---------------
Long campaigns hit failures a plain process pool cannot survive; the
orchestrator layers the following on top (all off/no-op by default, so
fault-free sweeps behave bit-identically to the historical implementation):

* **timeouts** — ``cell_timeout`` bounds each attempt's wall clock; a hung
  worker is killed (and only that worker; its siblings keep computing) and
  the cell counts as a ``timeout`` failure;
* **retries** — ``max_retries`` extra attempts per cell with exponential
  backoff, but only for *retryable* categories (transient / timeout /
  crash — see :mod:`repro.runner.errors`); deterministic failures never
  burn retry budget;
* **crash recovery** — a worker that dies (OOM-kill, segfault) is
  attributed to exactly the cell it was evaluating, respawned, and the
  cell retried; pending and in-flight sibling cells are unaffected
  (:class:`repro.runner.pool.FaultTolerantPool` replaces
  ``ProcessPoolExecutor``, whose ``BrokenProcessPool`` failed every
  in-flight future);
* **graceful interrupts** — SIGINT drains in-flight cells, persists their
  artifacts, writes ``checkpoint.json``, and raises
  :class:`~repro.runner.errors.SweepInterrupted` carrying the partial
  report — identically for serial and parallel sweeps;
* **failure ledger** — every failed attempt is appended to
  ``<out_dir>/failures.json`` (:mod:`repro.runner.ledger`), and corrupt or
  schema-mismatched artifacts found during resume are quarantined as
  ``*.corrupt`` instead of silently recomputed over;
* **fault injection** — :mod:`repro.runner.faults` threads deterministic
  crash/hang/transient/corrupt injectors through :func:`evaluate_cell`
  via the ``REPRO_FAULTS`` environment variable, which is how the chaos
  suite (``tests/runner/test_faults.py``) proves all of the above.
"""

from __future__ import annotations

import dataclasses
import heapq
import time
import traceback as traceback_module
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.circuits.registry import build_benchmark
from repro.core.sizer import SizerConfig
from repro.library.delay_model import LookupTableDelayModel
from repro.library.synthetic90nm import make_synthetic_90nm_library
from repro.obs import (
    METRICS,
    MetricsRegistry,
    Tracer,
    activate,
    clock,
    load_trace,
    merge_traces,
    trace_payload,
    write_trace,
)
from repro.runner.artifacts import (
    DIGEST_LEN,
    artifact_path,
    load_artifact_status,
    quarantine_artifact,
    spec_key,
    write_artifact,
)
from repro.runner.errors import (
    SweepInterrupted,
    check_payload_health,
    classify_exception,
    is_retryable,
)
from repro.runner.faults import corrupt_artifact_if_injected, inject_evaluation_faults
from repro.runner.ledger import (
    CHECKPOINT_FILENAME,
    LEDGER_FILENAME,
    FailureLedger,
    FailureRecord,
    QuarantineRecord,
    write_checkpoint,
)
from repro.runner.pool import FaultTolerantPool
from repro.variation.model import VariationModel

#: Cell kinds understood by :func:`evaluate_cell`.
KINDS = ("table1", "fig4", "yield", "criticality")


def config_with_lam(config: Optional[SizerConfig], lam: float) -> SizerConfig:
    """The sizer configuration for one sweep cell.

    Preserves every caller-chosen field (``subcircuit_depth``,
    ``max_iterations``, ...) and only swaps the lambda — the historical
    behavior of silently replacing a mismatched config with a default
    ``SizerConfig(lam=lam)`` dropped all of them.
    """
    if config is None:
        return SizerConfig(lam=lam)
    if config.lam == lam:
        return config
    return dataclasses.replace(config, lam=lam)


@dataclass(frozen=True)
class SubstrateSpec:
    """Picklable recipe for the library / delay / variation substrates.

    The CLI's ``--sizes-per-cell / --alpha / --random-sigma`` options map
    onto these fields, so a sweep cell carries the exact substrates it must
    be evaluated with (and they participate in the artifact key).
    """

    sizes_per_cell: int = 7
    proportional_alpha: float = 0.6
    random_sigma: float = 2.0

    def build(self) -> Tuple[Any, Any, Any]:
        """Instantiate (library, delay_model, variation_model)."""
        library = make_synthetic_90nm_library(sizes_per_cell=self.sizes_per_cell)
        delay_model = LookupTableDelayModel(library)
        variation_model = VariationModel(
            proportional_alpha=self.proportional_alpha,
            random_sigma=self.random_sigma,
        )
        return library, delay_model, variation_model


@dataclass(frozen=True)
class CellSpec:
    """One (circuit, lambda) cell of a sweep, fully self-describing.

    ``yield`` cells sweep a target yield instead of a lambda: their
    ``target_yield`` is set, their ``lam`` is fixed at 0.0 (the weight is
    derived from the target inside the sizer) and the artifact filename
    carries the target so different targets never collide.

    ``criticality`` cells analyse the mean-delay-sized design's statistical
    criticality (per-gate probabilities, top-``top_k`` paths, optional
    Monte-Carlo agreement) instead of running the statistical sizer; their
    ``lam`` is likewise fixed at 0.0.
    """

    kind: str
    circuit: str
    lam: float
    sizer_config: Optional[SizerConfig] = None
    monte_carlo_samples: int = 0
    seed: int = 0
    substrates: SubstrateSpec = SubstrateSpec()
    target_yield: Optional[float] = None
    top_k: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown cell kind {self.kind!r}; expected one of {KINDS}")
        if self.kind == "yield" and self.target_yield is None:
            raise ValueError("yield cells need a target_yield")
        if self.top_k is not None and self.top_k < 1:
            raise ValueError("top_k must be >= 1")
        # Normalize so lam=3 and lam=3.0 describe the same cell: both the
        # artifact filename and the json-encoded key payload must agree, or
        # resume would recompute (and duplicate) semantically identical cells.
        object.__setattr__(self, "lam", float(self.lam))
        if self.target_yield is not None:
            object.__setattr__(self, "target_yield", float(self.target_yield))

    def payload(self) -> Dict[str, Any]:
        """Canonical JSON-able description of every input shaping the result."""
        sizer_config = dataclasses.asdict(
            config_with_lam(self.sizer_config, self.lam)
        )
        sizer_config["lam"] = float(sizer_config["lam"])
        return {
            "kind": self.kind,
            "circuit": self.circuit,
            "lam": self.lam,
            "target_yield": self.target_yield,
            "top_k": self.top_k,
            "sizer_config": sizer_config,
            "monte_carlo_samples": self.monte_carlo_samples,
            "seed": self.seed,
            "substrates": dataclasses.asdict(self.substrates),
        }

    def key(self) -> str:
        return spec_key(self.payload())

    def digest(self) -> str:
        """Short spec-key prefix folded into the artifact filename.

        Covers every spec field the explicit filename parts miss —
        ``top_k``, ``monte_carlo_samples``, ``seed``, substrates and the
        sizer config — so two criticality cells for the same circuit
        (both ``lam=0.0``) can never overwrite one file.
        """
        return self.key()[:DIGEST_LEN]

    def artifact_path(self, out_dir: Union[str, Path]) -> Path:
        """Canonical artifact file for this cell under ``out_dir``."""
        return artifact_path(
            out_dir, self.kind, self.circuit, self.lam, self.target_yield,
            digest=self.digest(),
        )

    def artifact_stem(self) -> str:
        """Filename stem identifying this cell (used by the failure ledger)."""
        return self.artifact_path(".").stem

    def describe(self) -> str:
        """Human-readable one-liner for error messages and ledgers."""
        text = f"{self.kind} {self.circuit} lam={self.lam:g}"
        if self.target_yield is not None:
            text += f" y={self.target_yield:g}"
        return text


@dataclass
class CellResult:
    """Outcome of one cell: the result payload plus provenance."""

    spec: CellSpec
    key: str
    result: Dict[str, Any]
    runtime_seconds: float
    from_cache: bool = False
    #: Schema-1 trace payload of this cell's evaluation (span tree + the
    #: worker's per-cell metrics snapshot); ships back to the parent over
    #: the existing result pipe and is persisted beside the artifact.
    trace: Optional[Dict[str, Any]] = field(default=None, compare=False, repr=False)

    def table1_row(self) -> "Table1Row":
        """Reconstruct the Table-1 row of a ``kind == "table1"`` cell."""
        # Imported lazily: repro.analysis re-exports the experiment runners,
        # which drive this module — a top-level import would be circular.
        from repro.analysis.metrics import Table1Row

        if self.spec.kind != "table1":
            raise ValueError(f"cell kind is {self.spec.kind!r}, not 'table1'")
        return Table1Row(**self.result)


@dataclass
class SweepReport:
    """Summary of one :func:`run_cells` invocation.

    ``computed`` counts only cells that *succeeded* this run (historically
    it reported the whole pending count even when cells failed); failed,
    quarantined and never-run cells are reported separately.
    """

    results: List[CellResult]
    computed: int
    skipped: int
    wall_seconds: float
    jobs: int
    out_dir: Optional[Path]
    total: int = 0                 #: cells requested (defaults to len(results))
    failed: int = 0                #: cells whose retry budget was exhausted
    quarantined: int = 0           #: corrupt/schema artifacts moved aside
    retries: int = 0               #: extra attempts scheduled across all cells
    interrupted: bool = False      #: SIGINT drained the sweep early
    failures: List[FailureRecord] = field(default_factory=list)
    #: Campaign-level metrics snapshot: every cell's registry merged, plus
    #: the orchestrator's own counters (retries, backoff waits, respawns).
    metrics: Dict[str, Any] = field(default_factory=dict)

    @property
    def pending(self) -> int:
        """Cells that never reached a final state (only after an interrupt)."""
        total = self.total or len(self.results)
        return max(0, total - len(self.results) - self.failed)

    def summary(self) -> str:
        total = self.total or len(self.results)
        head = (
            f"{total} cell(s): {self.computed} computed, "
            f"{self.skipped} reused from artifacts"
        )
        if self.failed:
            head += f", {self.failed} failed"
        if self.pending:
            head += f", {self.pending} not run"
        parts = [head]
        if self.quarantined:
            parts.append(f"{self.quarantined} corrupt artifact(s) quarantined")
        if self.retries:
            noun = "retry" if self.retries == 1 else "retries"
            parts.append(f"{self.retries} {noun}")
        if self.interrupted:
            parts.append("interrupted -- completed artifacts and checkpoint persisted")
        parts.append(f"wall {self.wall_seconds:.1f} s with jobs={self.jobs}")
        if self.out_dir is not None:
            parts.append(f"artifacts in {self.out_dir}")
        return "; ".join(parts)


# ---------------------------------------------------------------------------
# Spec builders
# ---------------------------------------------------------------------------
def table1_specs(
    circuit_names: Sequence[str],
    lams: Sequence[float],
    sizer_config: Optional[SizerConfig] = None,
    substrates: Optional[SubstrateSpec] = None,
    monte_carlo_samples: int = 0,
    seed: int = 0,
) -> List[CellSpec]:
    """The (circuit, lambda) grid of a Table-1 regeneration."""
    substrates = substrates or SubstrateSpec()
    return [
        CellSpec(
            kind="table1",
            circuit=name,
            lam=lam,
            sizer_config=config_with_lam(sizer_config, lam),
            monte_carlo_samples=monte_carlo_samples,
            seed=seed,
            substrates=substrates,
        )
        for name in circuit_names
        for lam in lams
    ]


def fig4_specs(
    circuit_name: str,
    lams: Sequence[float],
    sizer_config: Optional[SizerConfig] = None,
    substrates: Optional[SubstrateSpec] = None,
) -> List[CellSpec]:
    """One circuit swept across lambda values (the Fig. 4 trade-off curve)."""
    substrates = substrates or SubstrateSpec()
    return [
        CellSpec(
            kind="fig4",
            circuit=circuit_name,
            lam=lam,
            sizer_config=config_with_lam(sizer_config, lam),
            substrates=substrates,
        )
        for lam in lams
    ]


def yield_specs(
    circuit_names: Sequence[str],
    target_yields: Sequence[float],
    sizer_config: Optional[SizerConfig] = None,
    substrates: Optional[SubstrateSpec] = None,
) -> List[CellSpec]:
    """The (circuit, target_yield) grid of a yield-objective sweep.

    Each cell sizes its circuit for the minimum clock period achieving the
    target yield.  ``sizer_config`` supplies the budget knobs
    (``max_iterations``, ``pdf_samples``, ...); its objective, target and
    lambda are overridden per cell.
    """
    substrates = substrates or SubstrateSpec()
    base = sizer_config or SizerConfig()
    return [
        CellSpec(
            kind="yield",
            circuit=name,
            lam=0.0,
            sizer_config=dataclasses.replace(
                base, lam=0.0, objective="yield", target_yield=float(target)
            ),
            substrates=substrates,
            target_yield=target,
        )
        for name in circuit_names
        for target in target_yields
    ]


def criticality_specs(
    circuit_names: Sequence[str],
    top_k: int = 5,
    monte_carlo_samples: int = 0,
    seed: int = 0,
    substrates: Optional[SubstrateSpec] = None,
) -> List[CellSpec]:
    """One criticality-analysis cell per circuit.

    Each cell sizes its circuit for minimum mean delay (the common starting
    point of every sweep kind), computes the analytic gate criticalities and
    the top-``top_k`` statistical paths, and — when ``monte_carlo_samples``
    is positive — cross-checks them against empirical critical-path
    frequencies.
    """
    substrates = substrates or SubstrateSpec()
    return [
        CellSpec(
            kind="criticality",
            circuit=name,
            lam=0.0,
            monte_carlo_samples=monte_carlo_samples,
            seed=seed,
            substrates=substrates,
            top_k=top_k,
        )
        for name in circuit_names
    ]


# ---------------------------------------------------------------------------
# Per-cell evaluators (module-level so they pickle into workers)
# ---------------------------------------------------------------------------
def _evaluate_table1(spec: CellSpec) -> Dict[str, Any]:
    from repro.analysis.metrics import Table1Row
    from repro.flow import run_sizing_flow

    circuit = build_benchmark(spec.circuit)
    library, delay_model, variation_model = spec.substrates.build()
    flow = run_sizing_flow(
        circuit,
        lam=spec.lam,
        library=library,
        delay_model=delay_model,
        variation_model=variation_model,
        sizer_config=config_with_lam(spec.sizer_config, spec.lam),
        monte_carlo_samples=spec.monte_carlo_samples,
        seed=spec.seed,
    )
    return dataclasses.asdict(Table1Row.from_flow(spec.circuit, flow))


#: Per-process memo of the deterministic fig4 baseline, keyed by
#: (circuit, substrates): (sizes, original mean, original sigma).  Serial
#: sweeps derive the mean-delay starting point once per circuit instead of
#: once per lambda; workers warm their own copy on first use.  MeanDelaySizer
#: is deterministic, so the memo never changes any result.
_FIG4_BASELINES: Dict[Tuple[str, SubstrateSpec], Tuple[Dict[str, int], float, float]] = {}


def _evaluate_fig4(spec: CellSpec) -> Dict[str, Any]:
    from repro.core.baseline import MeanDelaySizer
    from repro.core.fullssta import FULLSSTA
    from repro.core.rv import NormalDelay
    from repro.core.sizer import StatisticalGreedySizer

    library, delay_model, variation_model = spec.substrates.build()
    circuit = build_benchmark(spec.circuit)
    fullssta = FULLSSTA(delay_model, variation_model)
    memo_key = (spec.circuit, spec.substrates)
    cached = _FIG4_BASELINES.get(memo_key)
    if cached is None:
        MeanDelaySizer(delay_model).optimize(circuit)
        original = fullssta.analyze(circuit).output_rv
        _FIG4_BASELINES[memo_key] = (
            dict(circuit.sizes()), original.mean, original.sigma
        )
    else:
        sizes, mean, sigma = cached
        circuit.apply_sizes(sizes)
        original = NormalDelay(mean, sigma)
    if spec.lam > 0:
        config = config_with_lam(spec.sizer_config, spec.lam)
        StatisticalGreedySizer(delay_model, variation_model, config).optimize(circuit)
        final = fullssta.analyze(circuit).output_rv
    else:
        final = original
    return {
        "circuit": spec.circuit,
        "lam": spec.lam,
        "original_mean": original.mean,
        "original_sigma": original.sigma,
        "mean": final.mean,
        "sigma": final.sigma,
        "area": delay_model.circuit_area(circuit),
    }


def _evaluate_yield(spec: CellSpec) -> Dict[str, Any]:
    from repro.flow import run_sizing_flow

    circuit = build_benchmark(spec.circuit)
    library, delay_model, variation_model = spec.substrates.build()
    config = dataclasses.replace(
        config_with_lam(spec.sizer_config, spec.lam),
        objective="yield",
        target_yield=spec.target_yield,
    )
    flow = run_sizing_flow(
        circuit,
        lam=config.lam,
        library=library,
        delay_model=delay_model,
        variation_model=variation_model,
        sizer_config=config,
    )
    result: Dict[str, Any] = {
        "circuit": spec.circuit,
        "original_mean": flow.original_rv.mean,
        "original_sigma": flow.original_rv.sigma,
        "mean": flow.final_rv.mean,
        "sigma": flow.final_rv.sigma,
        "area": flow.final_area,
        "original_area": flow.original_area,
    }
    result.update(flow.yield_summary(spec.target_yield))
    return result


def _evaluate_criticality(spec: CellSpec) -> Dict[str, Any]:
    from repro.core.baseline import MeanDelaySizer
    from repro.core.fassta import FASSTA
    from repro.criticality import (
        CriticalityAnalyzer,
        MonteCarloCriticality,
        extract_top_paths,
        total_path_mass,
    )

    circuit = build_benchmark(spec.circuit)
    _, delay_model, variation_model = spec.substrates.build()
    MeanDelaySizer(delay_model).optimize(circuit)
    analysis = FASSTA(delay_model, variation_model, vectorized=True).analyze(circuit)
    crit = CriticalityAnalyzer(circuit).analyze(analysis.arrivals)
    top_k = spec.top_k or 5
    paths = extract_top_paths(circuit, crit, analysis.arrivals, k=top_k)
    result: Dict[str, Any] = {
        "circuit": spec.circuit,
        "gates": circuit.num_gates(),
        "source_mass": crit.total_source_mass(),
        "top_path_mass": total_path_mass(paths),
        "top_paths": [
            {
                "output": path.output_net,
                "source": path.source_net,
                "criticality": path.criticality,
                "length": len(path.gates),
                "exact": path.exact,
            }
            for path in paths
        ],
    }
    if spec.monte_carlo_samples > 0:
        mc = MonteCarloCriticality(delay_model, variation_model).run(
            circuit,
            num_samples=spec.monte_carlo_samples,
            seed=spec.seed,
            paths=paths,
        )
        result["mc_max_abs_gate_error"] = mc.max_abs_gate_error(
            crit.gate_criticality
        )
        result["mc_mean_abs_gate_error"] = mc.mean_abs_gate_error(
            crit.gate_criticality
        )
        result["mc_path_frequency"] = list(mc.path_frequency)
    return result


_EVALUATORS: Dict[str, Callable[[CellSpec], Dict[str, Any]]] = {
    "table1": _evaluate_table1,
    "fig4": _evaluate_fig4,
    "yield": _evaluate_yield,
    "criticality": _evaluate_criticality,
}


def evaluate_cell(spec: CellSpec, attempt: int = 0) -> CellResult:
    """Run one sweep cell to completion (this is the worker entry point).

    ``attempt`` is the zero-based retry counter; it feeds the
    fault-injection harness (so injected faults can heal on a chosen
    attempt) and is otherwise inert — evaluation itself is deterministic.
    The result payload is health-checked before it can ever reach an
    artifact: NaN/inf values or negative sigmas raise
    :class:`~repro.runner.errors.NumericalHealthError`.
    """
    inject_evaluation_faults(spec, attempt)
    # Each attempt records its own span tree and metrics from scratch: the
    # process-wide registry is reset so a worker reused across cells ships
    # per-cell (not cumulative) numbers back over the result pipe.
    METRICS.reset()
    tracer = Tracer(enabled=True)
    with activate(tracer):
        with tracer.span(
            "cell",
            kind=spec.kind,
            circuit=spec.circuit,
            lam=spec.lam,
            attempt=attempt,
        ) as cell_span:
            result = _EVALUATORS[spec.kind](spec)
    check_payload_health(result, context=spec.describe())
    trace = trace_payload(
        f"cell {spec.artifact_stem()}", tracer.spans, metrics=METRICS.snapshot()
    )
    return CellResult(
        spec=spec,
        key=spec.key(),
        result=result,
        runtime_seconds=cell_span.duration_s,
        trace=trace,
    )


# ---------------------------------------------------------------------------
# Orchestration
# ---------------------------------------------------------------------------
ProgressFn = Callable[[int, int, CellResult], None]


def _cell_trace_path(artifact: Path) -> Path:
    """The per-cell trace file living beside ``artifact`` (``*.trace.json``)."""
    return artifact.with_suffix(".trace.json")


def _preflight_cells(specs: Sequence[CellSpec]) -> None:
    """Lint each distinct (circuit, library) pair once before any evaluation.

    Cells sharing a circuit and a library geometry are checked once; the
    linter's ERROR diagnostics surface as
    :class:`~repro.verify.preflight.PreflightError` (a
    :class:`~repro.runner.errors.DeterministicError`) in the parent process.
    Uses the module-level ``build_benchmark`` binding so tests (and embedding
    callers) that monkeypatch it exercise the same circuits the workers
    would evaluate.
    """
    from repro.verify.preflight import preflight_circuit

    seen = set()
    for spec in specs:
        key = (spec.circuit, spec.substrates.sizes_per_cell)
        if key in seen:
            continue
        seen.add(key)
        try:
            circuit = build_benchmark(spec.circuit)
        except Exception:
            # An unresolvable circuit name is not a lint finding: leave the
            # cell to fail through the normal per-cell machinery, so sibling
            # cells still run and the failure lands in the ledger.
            continue
        library = make_synthetic_90nm_library(
            sizes_per_cell=spec.substrates.sizes_per_cell
        )
        preflight_circuit(circuit, library=library)


def run_cells(
    specs: Sequence[CellSpec],
    jobs: int = 1,
    out_dir: Optional[Union[str, Path]] = None,
    resume: bool = False,
    progress: Optional[ProgressFn] = None,
    cell_timeout: Optional[float] = None,
    max_retries: int = 0,
    retry_backoff: float = 0.5,
    backoff_factor: float = 2.0,
    backoff_max: float = 60.0,
    on_error: str = "fail",
    preflight: bool = True,
) -> SweepReport:
    """Execute sweep cells, optionally in parallel, resumably and fault-tolerantly.

    Parameters
    ----------
    specs:
        The cells to run; results come back in the same order.
    jobs:
        ``1`` runs everything in-process (no workers involved); ``> 1``
        fans pending cells across a
        :class:`~repro.runner.pool.FaultTolerantPool` of worker processes.
    out_dir:
        Results directory for per-cell JSON artifacts.  ``None`` disables
        persistence (and therefore resume, the failure ledger and the
        interrupt checkpoint).
    resume:
        Skip cells whose artifact exists under ``out_dir`` and whose stored
        key matches the current spec hash.  Corrupt or schema-mismatched
        artifacts encountered during the scan are quarantined as
        ``*.corrupt`` (and recorded in the ledger) before recomputing.
    progress:
        Optional callback invoked as ``progress(done, total, result)``
        after every successful cell (cached or computed), in completion
        order.
    cell_timeout:
        Wall-clock budget in seconds per attempt.  Enforced only with
        ``jobs > 1`` (a hung in-process cell cannot be preempted); the
        hung worker is killed and the cell counts as a ``timeout`` failure.
    max_retries:
        Extra attempts per cell for retryable failures (transient /
        timeout / worker crash).  Deterministic failures never retry.
    retry_backoff / backoff_factor / backoff_max:
        Attempt ``n`` (zero-based) waits
        ``min(backoff_max, retry_backoff * backoff_factor**n)`` seconds
        before retrying.
    on_error:
        ``"fail"`` (default, historical behavior): every cell still runs —
        a failing cell never discards siblings — but a ``RuntimeError``
        aggregating the final failures is raised at the end.
        ``"continue"``: no raise; failures are reported in the returned
        :class:`SweepReport` for the caller to inspect.
    preflight:
        Lint each distinct (circuit, substrates) pair among the *pending*
        cells against the DRC catalogue before any evaluation starts.
        ERROR diagnostics raise
        :class:`~repro.runner.errors.DeterministicError` in the parent —
        before a single worker is spawned — regardless of ``on_error``,
        because retrying or continuing cannot fix a defective netlist.
        The CLI exposes ``--no-preflight`` to opt out.

    Raises
    ------
    SweepInterrupted
        On SIGINT, after draining in-flight cells, persisting their
        artifacts and writing ``checkpoint.json`` — identically for serial
        and parallel sweeps.  Carries the partial report.
    DeterministicError
        When ``preflight=True`` and a pending cell's circuit fails DRC.
    RuntimeError
        With ``on_error="fail"``, when any cell exhausted its retry budget.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if max_retries < 0:
        raise ValueError("max_retries must be >= 0")
    if on_error not in ("fail", "continue"):
        raise ValueError(f"on_error must be 'fail' or 'continue', got {on_error!r}")
    start = clock()
    start_unix = time.time()
    respawn_base = METRICS.get_counter("pool.respawns")
    campaign_metrics = MetricsRegistry()
    out_path = Path(out_dir) if out_dir is not None else None
    if out_path is not None:
        out_path.mkdir(parents=True, exist_ok=True)
    ledger = FailureLedger(out_path / LEDGER_FILENAME if out_path else None)

    total = len(specs)
    results: List[Optional[CellResult]] = [None] * total
    done = 0
    quarantined = 0
    pending: List[int] = []
    for i, spec in enumerate(specs):
        cached = None
        if resume and out_path is not None:
            path = spec.artifact_path(out_path)
            artifact, status = load_artifact_status(path)
            if status in ("corrupt", "schema"):
                target = quarantine_artifact(path)
                quarantined += 1
                ledger.record_quarantine(
                    QuarantineRecord(
                        artifact=path.name,
                        quarantined_as=target.name,
                        reason=status,
                    )
                )
            elif status == "ok" and artifact["key"] == spec.key():
                trace = None
                trace_file = _cell_trace_path(path)
                if trace_file.exists():
                    try:
                        trace = load_trace(trace_file)
                    except (ValueError, OSError):
                        trace = None
                cached = CellResult(
                    spec=spec,
                    key=artifact["key"],
                    result=artifact["result"],
                    runtime_seconds=float(artifact.get("runtime_seconds", 0.0)),
                    from_cache=True,
                    trace=trace,
                )
        if cached is not None:
            results[i] = cached
            done += 1
            if progress is not None:
                progress(done, total, cached)
        else:
            pending.append(i)

    if preflight and pending:
        _preflight_cells([specs[i] for i in pending])

    computed = 0
    retries = 0
    final_failures: List[FailureRecord] = []
    all_failures: List[FailureRecord] = []

    def _finish(index: int, result: CellResult, attempt: int = 0) -> None:
        nonlocal done, computed
        results[index] = result
        if out_path is not None:
            path = result.spec.artifact_path(out_path)
            write_artifact(
                path,
                key=result.key,
                spec=result.spec.payload(),
                result=result.result,
                runtime_seconds=result.runtime_seconds,
            )
            if result.trace is not None:
                write_trace(_cell_trace_path(path), result.trace)
            corrupt_artifact_if_injected(result.spec, attempt, path)
        done += 1
        computed += 1
        if progress is not None:
            progress(done, total, result)

    def _backoff_delay(attempt: int) -> float:
        return min(backoff_max, retry_backoff * backoff_factor**attempt)

    def _record_failure(
        index: int,
        attempt: int,
        category: str,
        error: str,
        message: str,
        tb: str,
        elapsed: float,
        allow_retry: bool = True,
    ) -> bool:
        """Ledger one failed attempt; True iff a retry should be scheduled."""
        nonlocal retries
        spec = specs[index]
        will_retry = allow_retry and is_retryable(category) and attempt < max_retries
        record = FailureRecord(
            cell=spec.artifact_stem(),
            key=spec.key(),
            kind=spec.kind,
            circuit=spec.circuit,
            lam=spec.lam,
            target_yield=spec.target_yield,
            attempt=attempt,
            category=category,
            error=error,
            message=message,
            traceback=tb,
            elapsed_seconds=elapsed,
            retried=will_retry,
        )
        ledger.record_failure(record)
        all_failures.append(record)
        campaign_metrics.counter(f"sweep.failures.{category}")
        if will_retry:
            retries += 1
            campaign_metrics.histogram(
                "sweep.backoff_wait_s", _backoff_delay(attempt)
            )
        else:
            final_failures.append(record)
        return will_retry

    interrupted = False
    # A failing cell must not discard its siblings: every other cell still
    # runs, completed cells persist to artifacts (so a later --resume only
    # pays for the failures), and the errors are reported together at the end.
    if jobs == 1 or not pending:
        interrupted = _run_serial(
            specs, pending, _finish, _record_failure, _backoff_delay
        )
    else:
        interrupted = _run_parallel(
            specs,
            pending,
            min(jobs, len(pending)),
            cell_timeout,
            _finish,
            _record_failure,
            _backoff_delay,
        )

    # Fold every cell's shipped metrics (cached cells included, so the
    # campaign numbers describe the whole grid) plus the orchestrator's own
    # counters into one registry; the snapshot rides on the report and the
    # campaign trace.
    completed = [r for r in results if r is not None]
    for result in completed:
        if result.trace is not None:
            campaign_metrics.merge(result.trace.get("metrics", {}))
    campaign_metrics.counter("sweep.cells_total", total)
    campaign_metrics.counter("sweep.cells_computed", computed)
    campaign_metrics.counter("sweep.cells_cached", done - computed)
    campaign_metrics.counter("sweep.retries", retries)
    campaign_metrics.counter("sweep.failed", len(final_failures))
    campaign_metrics.counter("sweep.quarantined", quarantined)
    # Serial sweeps reset the process registry per cell, so clamp the delta.
    respawns = max(0, METRICS.get_counter("pool.respawns") - respawn_base)
    if respawns:
        campaign_metrics.counter("pool.respawns", respawns)

    report = SweepReport(
        results=completed,
        computed=computed,
        skipped=done - computed,
        wall_seconds=clock() - start,
        jobs=jobs,
        out_dir=out_path,
        total=total,
        failed=len(final_failures),
        quarantined=quarantined,
        retries=retries,
        interrupted=interrupted,
        failures=final_failures,
        metrics=campaign_metrics.snapshot(),
    )

    # One merged campaign trace: every completed cell's span tree under a
    # synthetic root, plus one synthesized span per failed attempt
    # (crashed/hung workers can never ship theirs).  A fully-cached resume
    # leaves the existing file untouched — nothing ran, nothing changed.
    if out_path is not None and (
        computed or all_failures or not (out_path / "trace.json").exists()
    ):
        failure_spans = [
            {
                "id": f"fail.{n}",
                "parent": None,
                "name": "cell.failure",
                "start_unix": start_unix,
                "duration_s": max(0.0, float(record.elapsed_seconds)),
                "attrs": {
                    "cell": record.cell,
                    "category": record.category,
                    "attempt": record.attempt,
                    "retried": record.retried,
                },
            }
            for n, record in enumerate(all_failures)
        ]
        write_trace(
            out_path / "trace.json",
            merge_traces(
                [r.trace for r in completed if r.trace is not None],
                name="sweep",
                metrics=report.metrics,
                extra_spans=failure_spans,
            ),
        )

    if interrupted:
        if out_path is not None:
            write_checkpoint(
                out_path / CHECKPOINT_FILENAME,
                {
                    "total": total,
                    "completed": [r.spec.artifact_stem() for r in report.results],
                    "failed": [record.cell for record in final_failures],
                    "pending": [
                        specs[i].artifact_stem()
                        for i in pending
                        if results[i] is None
                        and not any(
                            record.cell == specs[i].artifact_stem()
                            for record in final_failures
                        )
                    ],
                },
            )
        raise SweepInterrupted(
            f"sweep interrupted: {report.summary()}", report=report
        )

    if final_failures and on_error == "fail":
        details = "; ".join(
            f"{record.kind} {record.circuit} lam={record.lam:g}: {record.message}"
            for record in final_failures
        )
        raise RuntimeError(
            f"{len(final_failures)} of {total} sweep cell(s) failed ({details})"
            + ("; completed cells were persisted to artifacts"
               if out_path is not None else "")
        )

    return report


def _run_serial(
    specs: Sequence[CellSpec],
    pending: Sequence[int],
    finish: Callable[[int, CellResult, int], None],
    record_failure: Callable[..., bool],
    backoff_delay: Callable[[int], float],
) -> bool:
    """In-process execution with retries; returns True if interrupted."""
    try:
        for i in pending:
            attempt = 0
            while True:
                cell_start = clock()
                try:
                    result = evaluate_cell(specs[i], attempt=attempt)
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    elapsed = clock() - cell_start
                    if record_failure(
                        i,
                        attempt,
                        classify_exception(exc),
                        type(exc).__name__,
                        str(exc),
                        traceback_module.format_exc(),
                        elapsed,
                    ):
                        time.sleep(backoff_delay(attempt))
                        attempt += 1
                        continue
                    break
                finish(i, result, attempt)
                break
    except KeyboardInterrupt:
        return True
    return False


def _run_parallel(
    specs: Sequence[CellSpec],
    pending: Sequence[int],
    workers: int,
    cell_timeout: Optional[float],
    finish: Callable[[int, CellResult, int], None],
    record_failure: Callable[..., bool],
    backoff_delay: Callable[[int], float],
) -> bool:
    """Worker-pool execution with retries, timeouts and crash recovery.

    Returns True if interrupted (after draining in-flight cells).
    """
    runnable = deque((i, 0) for i in pending)
    waiting: List[Tuple[float, int, int]] = []  # (eligible_at, index, attempt)
    outstanding = len(pending)
    interrupted = False

    def _handle_event(event, allow_retry: bool) -> bool:
        """Process one pool event; True iff the cell reached a final state."""
        index, attempt = event.tag
        if event.kind == "ok":
            finish(index, event.value, attempt)
            return True
        if event.kind == "error":
            remote = event.value
            category, error = remote.category, remote.error
            message, tb = remote.message, remote.traceback
        elif event.kind == "crash":
            category, error = "crash", "WorkerCrashError"
            message = (
                f"worker died (exit code {event.value}) while evaluating "
                f"{specs[index].describe()}"
            )
            tb = ""
        else:  # timeout
            category, error = "timeout", "CellTimeoutError"
            message = (
                f"{specs[index].describe()} exceeded the cell timeout of "
                f"{cell_timeout:g} s; worker killed"
            )
            tb = ""
        if record_failure(
            index, attempt, category, error, message, tb,
            event.elapsed_seconds, allow_retry,
        ):
            heapq.heappush(
                waiting,
                (time.monotonic() + backoff_delay(attempt), index, attempt + 1),
            )
            return False
        return True

    pool = FaultTolerantPool(evaluate_cell, workers)
    try:
        try:
            while outstanding > 0:
                now = time.monotonic()
                while waiting and waiting[0][0] <= now:
                    _, index, attempt = heapq.heappop(waiting)
                    runnable.append((index, attempt))
                idle = pool.idle_workers()
                while runnable and idle:
                    index, attempt = runnable.popleft()
                    idle.pop()
                    pool.submit(
                        (index, attempt),
                        (specs[index], attempt),
                        timeout=cell_timeout,
                    )
                if pool.busy_count() == 0:
                    if runnable:
                        continue
                    if waiting:
                        time.sleep(max(0.0, waiting[0][0] - time.monotonic()))
                        continue
                    break  # defensive; outstanding bookkeeping says otherwise
                timeout = (
                    max(0.0, waiting[0][0] - time.monotonic()) if waiting else None
                )
                for event in pool.wait(timeout):
                    if _handle_event(event, allow_retry=True):
                        outstanding -= 1
        except KeyboardInterrupt:
            interrupted = True
            # Graceful drain: in-flight cells finish (timeouts still
            # enforced) and persist; queued work and retries are dropped.
            # A second SIGINT abandons the drain immediately.
            try:
                while pool.busy_count() > 0:
                    for event in pool.wait(None):
                        _handle_event(event, allow_retry=False)
            except KeyboardInterrupt:
                pass
    finally:
        pool.shutdown(kill=pool.busy_count() > 0)
    return interrupted
