"""Monte-Carlo circuit-delay simulation.

Neither the paper's FASSTA nor FULLSSTA is exact (independence assumptions,
pdf discretization, the quadratic erf approximation), so the reproduction
includes the obvious golden model: draw every gate delay from its normal
distribution, propagate deterministic arrival times per sample, and collect
the circuit-delay samples.  The engines are validated against this model in
the tests and accuracy benchmarks, and the EXPERIMENTS.md numbers quote the
MC sigma alongside the SSTA sigma.

The simulator supports independent per-gate variation (the paper's inner
model) and, optionally, the spatially correlated overlay of
:class:`~repro.variation.correlation.SpatialCorrelationModel`.

Propagation runs as a levelized array program over the circuit's compiled IR
(:meth:`Circuit.compiled() <repro.netlist.circuit.Circuit.compiled>`): one
``(num_nets, num_samples)`` arrival matrix, one ``np.take`` gather plus one
``np.maximum`` fold per input position per logic level — every sample
advances through a level at once instead of one gate at a time (see
:func:`propagate_levelized`).  Gate-delay *draws* stay in
``circuit.topological_order()`` order so the generator stream is
bit-compatible with the historical per-gate loop (pinned by
``tests/montecarlo/test_mc.py``); ``np.maximum`` and float addition are
exact, so the levelized propagation is bit-identical too.

Boundary conditions follow the IR's boundary mask, exactly like the SSTA
engines: primary inputs *and* floating (undriven non-PI) gate inputs carry
a zero arrival.  Undriven primary outputs remain an error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.ir.compiled import CompiledCircuit
from repro.library.delay_model import BaseDelayModel
from repro.netlist.circuit import Circuit
from repro.obs import METRICS, span
from repro.variation.correlation import SpatialCorrelationModel
from repro.variation.model import VariationModel


def propagate_levelized(plan: CompiledCircuit, delay: np.ndarray) -> np.ndarray:
    """Propagate arrival times for all samples at once over the IR.

    ``delay`` is a ``(num_gates, num_samples)`` gate-delay matrix in IR gate
    order.  Returns the ``(num_nets + 1, num_samples)`` arrival matrix whose
    rows follow the IR net-slot layout; boundary slots (primary inputs and
    floating gate inputs) hold zero, and the extra sentinel row holds
    ``-inf`` so the padded fanin matrix folds without a validity mask
    (``max(x, -inf) == x`` exactly).

    Per logic level the program is one ``np.take`` gather per fanin column
    folded with in-place ``np.maximum`` into a preallocated scratch buffer,
    then one ``np.add`` into the level's contiguous output-slot block.
    Every operation is an exact float op applied in the same order as the
    historical per-gate loop, so the result is bit-identical to it.
    """
    num_samples = delay.shape[1]
    arr = np.zeros((plan.num_nets + 1, num_samples))
    arr[plan.num_nets] = -np.inf
    if not plan.num_gates:
        return arr
    fanin = plan.fanin_matrix
    offsets = plan.level_offsets
    num_cols = fanin.shape[1]
    max_width = int(np.diff(offsets).max())
    acc = np.empty((max_width, num_samples))
    tmp = np.empty((max_width, num_samples))
    for li in range(plan.num_levels):
        start, stop = offsets[li], offsets[li + 1]
        width = stop - start
        worst = acc[:width]
        np.take(arr, fanin[start:stop, 0], axis=0, out=worst)
        for col in range(1, num_cols):
            other = tmp[:width]
            np.take(arr, fanin[start:stop, col], axis=0, out=other)
            np.maximum(worst, other, out=worst)
        out = plan.num_pis + start
        np.add(worst, delay[start:stop], out=arr[out: out + width])
    return arr


@dataclass
class MonteCarloResult:
    """Sampled circuit-delay distribution."""

    samples: np.ndarray
    per_output_mean: Dict[str, float]
    per_output_sigma: Dict[str, float]

    @property
    def mean(self) -> float:
        return float(self.samples.mean())

    @property
    def sigma(self) -> float:
        return float(self.samples.std(ddof=1)) if self.samples.size > 1 else 0.0

    @property
    def num_samples(self) -> int:
        return int(self.samples.size)

    def quantile(self, q: float) -> float:
        """Empirical quantile of the circuit delay."""
        if not 0.0 < q < 1.0:
            raise ValueError("quantile level must be in (0, 1)")
        return float(np.quantile(self.samples, q))

    @property
    def cv(self) -> float:
        return self.sigma / self.mean if self.mean else 0.0


class MonteCarloTimer:
    """Samples circuit delays under the gate-delay variation model.

    Parameters
    ----------
    delay_model / variation_model:
        The same substrates the SSTA engines use, so all three see identical
        per-gate distributions.
    correlation_model:
        Optional spatial-correlation overlay.  When given, the proportional
        part of every gate's sigma is split into a correlated component
        (driven by shared grid factors) and an independent residual.
    """

    def __init__(
        self,
        delay_model: BaseDelayModel,
        variation_model: VariationModel,
        correlation_model: Optional[SpatialCorrelationModel] = None,
    ) -> None:
        self.delay_model = delay_model
        self.variation_model = variation_model
        self.correlation_model = correlation_model

    # ------------------------------------------------------------------
    def run(
        self,
        circuit: Circuit,
        num_samples: int = 2000,
        seed: Optional[int] = 0,
    ) -> MonteCarloResult:
        """Draw ``num_samples`` joint gate-delay samples and time the circuit.

        The inner propagation is vectorised across samples: each net carries
        a length-``num_samples`` array of arrival times.
        """
        if num_samples < 2:
            raise ValueError("num_samples must be at least 2")
        METRICS.counter("mc.runs")
        METRICS.counter("mc.samples", num_samples)
        with span(
            "mc.run", circuit=circuit.name, samples=num_samples
        ) as mc_span:
            result = self._run(circuit, num_samples, seed)
            mc_span.set(mean=result.mean, sigma=result.sigma)
        return result

    def _run(
        self,
        circuit: Circuit,
        num_samples: int,
        seed: Optional[int],
    ) -> MonteCarloResult:
        rng = np.random.default_rng(seed)

        # Draw order is part of the pinned RNG stream contract (bit-compat
        # with the scalar timer).  repro-lint: allow=RL001
        order = circuit.topological_order()
        distributions = self.variation_model.all_gate_distributions(
            circuit, self.delay_model
        )
        plan = circuit.compiled()

        # Pre-draw the gate-delay samples into a (num_gates, num_samples)
        # matrix in IR gate order.  The draw loop itself stays in
        # topological order: the generator stream is pinned bit-for-bit by
        # the regression tests, so only the *storage* is array-native.
        delay = np.empty((plan.num_gates, num_samples))
        if self.correlation_model is None:
            for name in order:
                dist = distributions[name]
                delay[plan.gate_index[name]] = rng.normal(
                    dist.mean, dist.sigma, num_samples
                )
        else:
            # Vectorized correlated path: one (num_samples, num_factors) draw
            # for the shared grid factors and one matmul for every gate's
            # correlated component; the independent/random parts stay
            # per-gate (2, num_samples) draws, which consume the exact same
            # generator stream without an O(gates x samples) upfront tensor.
            # Stream and arithmetic match the historical per-sample loop
            # bit-for-bit (pinned by tests/montecarlo/test_mc.py).
            factor_array = self.correlation_model.sample_factor_array(
                rng, num_samples
            )
            correlated_all = self.correlation_model.correlated_components(
                order, factor_array
            )
            sigma_rand = self.variation_model.random_sigma
            for j, name in enumerate(order):
                dist = distributions[name]
                gate = circuit.gate(name)
                drive = self.delay_model.library.size(
                    gate.cell_type, gate.size_index
                ).drive
                sigma_prop = (
                    self.variation_model.proportional_alpha
                    * dist.mean
                    / (drive ** self.variation_model.size_exponent)
                )
                sigma_corr, sigma_ind = self.correlation_model.split_sigma(sigma_prop)
                noise = rng.standard_normal((2, num_samples))
                delay[plan.gate_index[name]] = (
                    dist.mean
                    + sigma_corr * correlated_all[:, j]
                    + sigma_ind * noise[0]
                    + sigma_rand * noise[1]
                )

        # Levelized propagation over all samples at once.  Boundary slots
        # (primary inputs and floating gate inputs, per the IR boundary
        # mask) carry a zero arrival — the same convention as the SSTA
        # engines.
        arr = propagate_levelized(plan, delay)

        outputs = circuit.primary_outputs
        if not outputs:
            raise ValueError(f"circuit {circuit.name!r} has no primary outputs")
        # A primary output must be a primary input or a gate output;
        # floating/unknown output nets are netlist bugs, like the engines.
        missing = [
            net
            for net in outputs
            if plan.net_index.get(net) is None or net in plan.floating
        ]
        if missing:
            raise KeyError(
                f"unknown output net(s) {missing} in circuit {circuit.name!r}"
            )
        circuit_delay = None
        per_output_mean: Dict[str, float] = {}
        per_output_sigma: Dict[str, float] = {}
        for net in outputs:
            samples = arr[plan.net_index[net]]
            per_output_mean[net] = float(samples.mean())
            per_output_sigma[net] = float(samples.std(ddof=1))
            circuit_delay = (
                samples
                if circuit_delay is None
                else np.maximum(circuit_delay, samples)
            )

        return MonteCarloResult(
            samples=circuit_delay,
            per_output_mean=per_output_mean,
            per_output_sigma=per_output_sigma,
        )
