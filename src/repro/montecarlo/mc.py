"""Monte-Carlo circuit-delay simulation.

Neither the paper's FASSTA nor FULLSSTA is exact (independence assumptions,
pdf discretization, the quadratic erf approximation), so the reproduction
includes the obvious golden model: draw every gate delay from its normal
distribution, propagate deterministic arrival times per sample, and collect
the circuit-delay samples.  The engines are validated against this model in
the tests and accuracy benchmarks, and the EXPERIMENTS.md numbers quote the
MC sigma alongside the SSTA sigma.

The simulator supports independent per-gate variation (the paper's inner
model) and, optionally, the spatially correlated overlay of
:class:`~repro.variation.correlation.SpatialCorrelationModel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.library.delay_model import BaseDelayModel
from repro.netlist.circuit import Circuit
from repro.variation.correlation import SpatialCorrelationModel
from repro.variation.model import VariationModel


@dataclass
class MonteCarloResult:
    """Sampled circuit-delay distribution."""

    samples: np.ndarray
    per_output_mean: Dict[str, float]
    per_output_sigma: Dict[str, float]

    @property
    def mean(self) -> float:
        return float(self.samples.mean())

    @property
    def sigma(self) -> float:
        return float(self.samples.std(ddof=1)) if self.samples.size > 1 else 0.0

    @property
    def num_samples(self) -> int:
        return int(self.samples.size)

    def quantile(self, q: float) -> float:
        """Empirical quantile of the circuit delay."""
        if not 0.0 < q < 1.0:
            raise ValueError("quantile level must be in (0, 1)")
        return float(np.quantile(self.samples, q))

    @property
    def cv(self) -> float:
        return self.sigma / self.mean if self.mean else 0.0


class MonteCarloTimer:
    """Samples circuit delays under the gate-delay variation model.

    Parameters
    ----------
    delay_model / variation_model:
        The same substrates the SSTA engines use, so all three see identical
        per-gate distributions.
    correlation_model:
        Optional spatial-correlation overlay.  When given, the proportional
        part of every gate's sigma is split into a correlated component
        (driven by shared grid factors) and an independent residual.
    """

    def __init__(
        self,
        delay_model: BaseDelayModel,
        variation_model: VariationModel,
        correlation_model: Optional[SpatialCorrelationModel] = None,
    ) -> None:
        self.delay_model = delay_model
        self.variation_model = variation_model
        self.correlation_model = correlation_model

    # ------------------------------------------------------------------
    def run(
        self,
        circuit: Circuit,
        num_samples: int = 2000,
        seed: Optional[int] = 0,
    ) -> MonteCarloResult:
        """Draw ``num_samples`` joint gate-delay samples and time the circuit.

        The inner propagation is vectorised across samples: each net carries
        a length-``num_samples`` array of arrival times.
        """
        if num_samples < 2:
            raise ValueError("num_samples must be at least 2")
        rng = np.random.default_rng(seed)

        order = circuit.topological_order()
        distributions = self.variation_model.all_gate_distributions(
            circuit, self.delay_model
        )

        # Pre-draw the gate-delay samples.
        gate_samples: Dict[str, np.ndarray] = {}
        if self.correlation_model is None:
            for name in order:
                dist = distributions[name]
                gate_samples[name] = rng.normal(dist.mean, dist.sigma, num_samples)
        else:
            # Vectorized correlated path: one (num_samples, num_factors) draw
            # for the shared grid factors and one matmul for every gate's
            # correlated component; the independent/random parts stay
            # per-gate (2, num_samples) draws, which consume the exact same
            # generator stream without an O(gates x samples) upfront tensor.
            # Stream and arithmetic match the historical per-sample loop
            # bit-for-bit (pinned by tests/montecarlo/test_mc.py).
            factor_array = self.correlation_model.sample_factor_array(
                rng, num_samples
            )
            correlated_all = self.correlation_model.correlated_components(
                order, factor_array
            )
            sigma_rand = self.variation_model.random_sigma
            for j, name in enumerate(order):
                dist = distributions[name]
                gate = circuit.gate(name)
                drive = self.delay_model.library.size(
                    gate.cell_type, gate.size_index
                ).drive
                sigma_prop = (
                    self.variation_model.proportional_alpha
                    * dist.mean
                    / (drive ** self.variation_model.size_exponent)
                )
                sigma_corr, sigma_ind = self.correlation_model.split_sigma(sigma_prop)
                noise = rng.standard_normal((2, num_samples))
                gate_samples[name] = (
                    dist.mean
                    + sigma_corr * correlated_all[:, j]
                    + sigma_ind * noise[0]
                    + sigma_rand * noise[1]
                )

        # Zero arrival is the documented boundary condition for true primary
        # inputs only; any other undriven net is a netlist bug and raises,
        # mirroring the SSTA engines.
        arrivals: Dict[str, np.ndarray] = {
            net: np.zeros(num_samples) for net in circuit.primary_inputs
        }
        for name in order:
            gate = circuit.gate(name)
            worst = None
            for net in gate.inputs:
                arr = arrivals.get(net)
                if arr is None:
                    raise KeyError(
                        f"gate {name!r} input net {net!r} is neither a primary "
                        f"input nor a gate output in circuit {circuit.name!r}"
                    )
                worst = arr if worst is None else np.maximum(worst, arr)
            arrivals[gate.output] = worst + gate_samples[name]

        outputs = circuit.primary_outputs
        if not outputs:
            raise ValueError(f"circuit {circuit.name!r} has no primary outputs")
        missing = [net for net in outputs if net not in arrivals]
        if missing:
            raise KeyError(
                f"unknown output net(s) {missing} in circuit {circuit.name!r}"
            )
        circuit_delay = None
        per_output_mean: Dict[str, float] = {}
        per_output_sigma: Dict[str, float] = {}
        for net in outputs:
            arr = arrivals[net]
            per_output_mean[net] = float(arr.mean())
            per_output_sigma[net] = float(arr.std(ddof=1))
            circuit_delay = arr if circuit_delay is None else np.maximum(circuit_delay, arr)

        return MonteCarloResult(
            samples=circuit_delay,
            per_output_mean=per_output_mean,
            per_output_sigma=per_output_sigma,
        )
