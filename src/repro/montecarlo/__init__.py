"""Monte-Carlo golden model for validating the statistical timing engines."""

from repro.montecarlo.mc import MonteCarloTimer, MonteCarloResult

__all__ = ["MonteCarloTimer", "MonteCarloResult"]
