"""Structural validation of circuits.

``validate_circuit`` checks the invariants the timing engines and the
optimizer rely on — every gate input driven, single-driver nets, driven
primary outputs, no combinational cycles or self-loop gates, and
(optionally) cell types / size indices that exist in a given library.

Since the static-verification layer landed, this module is a thin
compatibility wrapper over the **ERROR-severity** design rules in
:mod:`repro.verify.rules` — one source of truth for structural invariants.
The DRC linter is strictly stronger (it also reports WARNING-severity
findings such as unreachable gates and out-of-table loads, and attaches
rule ids, locations and fix hints); callers who want the full picture
should use :func:`repro.verify.lint_circuit` directly.

:class:`~repro.netlist.circuit.Circuit` construction rejects duplicate
drivers up front, but these checks still matter: gates are mutable objects,
so code that rewires ``gate.output`` (or bulk-loads gates) behind the
circuit's back can violate the invariant without tripping any constructor
guard.  The rules inspect the gate objects directly and therefore catch
such states — including cycles, which would otherwise only surface as a
:class:`~repro.netlist.circuit.CircuitError` (or a hang) deep inside
levelization.
"""

from __future__ import annotations

from typing import List

from repro.netlist.circuit import Circuit


class ValidationError(Exception):
    """Raised when a circuit violates a structural invariant."""

    def __init__(self, problems: List[str]):
        self.problems = list(problems)
        super().__init__("; ".join(problems))


def validate_circuit(circuit: Circuit, library=None, raise_on_error: bool = True) -> List[str]:
    """Check structural invariants; return the list of problems found.

    Runs the ERROR-severity subset of the DRC catalogue
    (:func:`repro.verify.rules.error_rules`) and returns the diagnostic
    messages as plain strings, preserving the historical interface.

    Parameters
    ----------
    circuit:
        The circuit to check.
    library:
        Optional :class:`repro.library.cell.Library`; when given, cell types
        and size indices are checked against it.
    raise_on_error:
        When true (default), raise :class:`ValidationError` if any problem
        is found instead of returning the list.
    """
    # Local import: repro.verify imports this package's Circuit class.
    from repro.verify.rules import error_rules, lint_circuit

    report = lint_circuit(circuit, library=library, rules=error_rules())
    problems = [diag.message for diag in report.diagnostics]
    if problems and raise_on_error:
        raise ValidationError(problems)
    return problems
