"""Structural validation of circuits.

``validate_circuit`` checks the invariants the timing engines and the
optimizer rely on:

* every gate input net has a driver (a primary input or another gate),
* every net has at most **one** driver — no two gates, and no gate and a
  primary input, may drive the same net,
* every primary output net has a driver,
* the circuit is acyclic (checked implicitly via topological ordering),
* no gate drives a primary input,
* optionally, every gate's cell type and size index exist in a given
  library.

:class:`~repro.netlist.circuit.Circuit` construction rejects duplicate
drivers up front, but the multi-driver checks still matter here: gates are
mutable objects, so code that rewires ``gate.output`` (or bulk-loads gates)
behind the circuit's back can violate the invariant without tripping any
constructor guard.  Validation inspects the gate objects directly and
therefore catches such states.
"""

from __future__ import annotations

from collections import Counter
from typing import List

from repro.netlist.circuit import Circuit, CircuitError


class ValidationError(Exception):
    """Raised when a circuit violates a structural invariant."""

    def __init__(self, problems: List[str]):
        self.problems = list(problems)
        super().__init__("; ".join(problems))


def validate_circuit(circuit: Circuit, library=None, raise_on_error: bool = True) -> List[str]:
    """Check structural invariants; return the list of problems found.

    Parameters
    ----------
    circuit:
        The circuit to check.
    library:
        Optional :class:`repro.library.cell.Library`; when given, cell types
        and size indices are checked against it.
    raise_on_error:
        When true (default), raise :class:`ValidationError` if any problem
        is found instead of returning the list.
    """
    problems: List[str] = []
    primary_inputs = set(circuit.primary_inputs)
    driven = set(primary_inputs)
    driven.update(g.output for g in circuit.gates.values())

    # Multi-driver nets: two gates on one net, or a gate driving a net that
    # is also a primary input.
    drivers_per_net = Counter(g.output for g in circuit.gates.values())
    for net, count in sorted(drivers_per_net.items()):
        if count > 1:
            names = sorted(
                g.name for g in circuit.gates.values() if g.output == net
            )
            problems.append(
                f"net {net!r} is driven by {count} gates: {names}"
            )
        if net in primary_inputs:
            names = sorted(
                g.name for g in circuit.gates.values() if g.output == net
            )
            problems.append(
                f"primary input {net!r} is also driven by gate(s): {names}"
            )

    for gate in circuit.gates.values():
        for net in gate.inputs:
            if net not in driven:
                problems.append(f"gate {gate.name!r} reads undriven net {net!r}")
        if library is not None:
            if not library.has_cell(gate.cell_type):
                problems.append(
                    f"gate {gate.name!r} uses unknown cell type {gate.cell_type!r}"
                )
            else:
                num_sizes = library.cell(gate.cell_type).num_sizes
                if gate.size_index >= num_sizes:
                    problems.append(
                        f"gate {gate.name!r} size index {gate.size_index} out of "
                        f"range for {gate.cell_type!r} ({num_sizes} sizes)"
                    )

    for net in circuit.primary_outputs:
        if net not in driven:
            problems.append(f"primary output {net!r} has no driver")

    try:
        circuit.topological_order()
    except CircuitError as exc:
        problems.append(str(exc))

    if problems and raise_on_error:
        raise ValidationError(problems)
    return problems
