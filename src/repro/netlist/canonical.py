"""Net canonicalization: alias merging, driver repair, and lowering.

The elaboration pass (:mod:`repro.netlist.elaborate`) leaves ``assign``
statements as raw *alias pairs* — it does not try to decide which of the two
names survives.  This module finishes the job:

1. **Union** every alias pair in a disjoint-set-union (union-find) structure
   with path compression, so arbitrarily long alias chains collapse in
   near-constant amortized time.
2. **Elect** one canonical representative per alias class.  The choice is a
   pure function of the class *membership* (primary inputs win, then primary
   outputs, then gate-driven nets, then plain wires; ties break on port
   declaration order or net name) — never of the order the ``assign``
   statements appeared in.  Canonicalization is therefore idempotent and
   order-independent by construction.
3. **Repair** the benign driver conflicts that alias merging can surface,
   instead of rejecting the netlist:

   * an alias class containing several primary outputs keeps one canonical
     net and gets a ``BUF`` repair gate per extra output, so every declared
     output stays observable and singly driven;
   * a class shorting a primary input to a primary output is the same shape
     (the input is canonical, the output gets a ``BUF``);
   * structurally identical parallel drivers (same cell type, same
     canonical input nets) are deduplicated down to the first instance;
   * primary inputs shorted to each other collapse onto the first-declared
     input (the others stay declared but unused).

   Everything else — distinct gates fighting over one canonical net, a gate
   driving a primary input — is *not* silently patched: in strict mode it
   raises :class:`~repro.netlist.ast.CanonicalizationError` naming the DRC
   rule that covers the defect; in non-strict mode the extra drivers are
   parked on reserved ``<net>__drv<k>`` nets and reported as diagnostics so
   ``lint`` can show the full picture.
4. **Lower** the result to a :class:`~repro.netlist.circuit.Circuit`, the
   single analysable form every engine consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.netlist.ast import (
    CanonicalizationError,
    FlatDesign,
    FlatGate,
    SourceLoc,
)
from repro.netlist.circuit import Circuit
from repro.netlist.gate import Gate

#: Name prefix of gates inserted by driver repair (never produced by parsers).
REPAIR_PREFIX = "__fe_buf_"

#: Net-name suffix used to park non-benign extra drivers in non-strict mode.
CONFLICT_SUFFIX = "__drv"


class DisjointSets:
    """Union-find over net names with iterative path compression.

    Only nets that actually appear in an alias pair are ever inserted, so
    the structure stays tiny even for 100k-gate designs with a handful of
    ``assign`` statements.
    """

    def __init__(self) -> None:
        self._parent: Dict[str, str] = {}

    def add(self, item: str) -> None:
        self._parent.setdefault(item, item)

    def find(self, item: str) -> str:
        parent = self._parent
        if item not in parent:
            parent[item] = item
            return item
        root = item
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:  # path compression
            parent[item], item = root, parent[item]
        return root

    def union(self, a: str, b: str) -> str:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[rb] = ra
        return ra

    def classes(self) -> List[List[str]]:
        """All classes with two or more members, members in insertion order."""
        groups: Dict[str, List[str]] = {}
        for item in self._parent:
            groups.setdefault(self.find(item), []).append(item)
        return [members for members in groups.values() if len(members) > 1]


@dataclass(frozen=True)
class Diagnostic:
    """One canonicalization finding, tagged with the DRC rule it maps onto."""

    rule: str  # DRC rule id covering this defect ("" for pure repairs)
    severity: str  # "error" | "warning" | "repair"
    message: str
    loc: Optional[SourceLoc] = None

    def __str__(self) -> str:
        tag = f"[{self.rule}] " if self.rule else ""
        where = f" ({self.loc})" if self.loc is not None else ""
        return f"{self.severity.upper()} {tag}{self.message}{where}"


@dataclass
class CanonicalizeResult:
    """Outcome of canonicalizing a :class:`FlatDesign`."""

    circuit: Circuit
    #: Original net name -> canonical net name (identity entries omitted).
    net_map: Dict[str, str] = field(default_factory=dict)
    #: Names of repair gates inserted (``__fe_buf_*``).
    repairs: List[str] = field(default_factory=list)
    #: Gate names dropped as structurally identical parallel drivers.
    deduplicated: List[str] = field(default_factory=list)
    diagnostics: List[Diagnostic] = field(default_factory=list)

    @property
    def merged_nets(self) -> int:
        return len(self.net_map)

    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]


def _elect_representative(
    members: Iterable[str],
    pi_order: Dict[str, int],
    po_order: Dict[str, int],
    driven: Dict[str, int],
) -> str:
    """Pick the canonical net of an alias class.

    Priority: primary input (by declaration order), then primary output (by
    declaration order), then gate-driven net (by gate order), then any other
    net (lexicographic).  Depends only on the class membership, never on the
    order the aliases were declared or unioned.
    """

    def rank(net: str) -> Tuple[int, int, str]:
        if net in pi_order:
            return (0, pi_order[net], net)
        if net in po_order:
            return (1, po_order[net], net)
        if net in driven:
            return (2, driven[net], net)
        return (3, 0, net)

    return min(members, key=rank)


def canonicalize_design(
    design: FlatDesign,
    strict: bool = True,
) -> CanonicalizeResult:
    """Merge alias classes, repair benign conflicts, lower to a ``Circuit``.

    With ``strict=True`` (the default) any conflict that cannot be repaired
    raises :class:`CanonicalizationError`; with ``strict=False`` the netlist
    is still lowered — conflicting drivers are parked on reserved nets — and
    the problems are returned as :attr:`CanonicalizeResult.diagnostics` so
    callers like ``repro.cli lint`` can report everything at once.
    """
    pi_order = {net: i for i, net in enumerate(design.primary_inputs)}
    po_order = {net: i for i, net in enumerate(design.primary_outputs)}
    driven: Dict[str, int] = {}
    for idx, gate in enumerate(design.gates):
        driven.setdefault(gate.output, idx)

    # -- 1. union the alias pairs --------------------------------------
    dsu = DisjointSets()
    for lhs, rhs in design.aliases:
        dsu.union(lhs, rhs)

    # -- 2. elect canonical representatives ----------------------------
    net_map: Dict[str, str] = {}
    diagnostics: List[Diagnostic] = []
    class_of: Dict[str, List[str]] = {}
    for members in dsu.classes():
        rep = _elect_representative(members, pi_order, po_order, driven)
        class_of[rep] = members
        for net in members:
            if net != rep:
                net_map[net] = rep

    def canon(net: str) -> str:
        return net_map.get(net, net)

    # Shorted primary inputs: the non-canonical ones stay declared but all
    # readers move to the representative.
    for rep, members in class_of.items():
        extra_pis = [n for n in members if n in pi_order and n != rep]
        if extra_pis:
            diagnostics.append(
                Diagnostic(
                    rule="FE001",
                    severity="warning",
                    message=(
                        f"primary inputs {extra_pis} are aliased to "
                        f"{rep!r}; they remain declared but unused"
                    ),
                )
            )

    # Primary outputs folded into a class keep their declared name via a BUF
    # repair gate; readers use the canonical net.  A repaired output maps to
    # itself (its net is driven by the repair gate, not merged away).
    repaired_po_sources: Dict[str, str] = {}  # repaired PO -> its class rep
    for rep, members in class_of.items():
        for net in members:
            if net != rep and net in po_order:
                del net_map[net]
                repaired_po_sources[net] = rep
                diagnostics.append(
                    Diagnostic(
                        rule="FE002",
                        severity="repair",
                        message=(
                            f"primary output {net!r} aliased to {rep!r}: "
                            f"inserted buffer {REPAIR_PREFIX + net!r}"
                        ),
                    )
                )

    # -- 3. rewrite gates through the canonical map --------------------
    conflicts: Dict[str, List[int]] = {}
    for idx, gate in enumerate(design.gates):
        conflicts.setdefault(canon(gate.output), []).append(idx)

    drop: set = set()
    renamed_outputs: Dict[int, str] = {}
    deduplicated: List[str] = []

    def _gate_signature(gate: FlatGate) -> Tuple[str, Tuple[str, ...], int]:
        return (gate.cell_type, tuple(canon(n) for n in gate.inputs), gate.size_index)

    for net, indices in conflicts.items():
        gate_drives_pi = net in pi_order
        if len(indices) == 1 and not gate_drives_pi:
            continue
        if gate_drives_pi:
            gates = [design.gates[i] for i in indices]
            message = (
                f"gate(s) {[g.name for g in gates]} drive primary input {net!r}"
            )
            if strict:
                raise CanonicalizationError(
                    f"{message} [DRC003]", loc=gates[0].loc
                )
            diagnostics.append(
                Diagnostic("DRC003", "error", message, loc=gates[0].loc)
            )
            for k, idx in enumerate(indices):
                renamed_outputs[idx] = f"{net}{CONFLICT_SUFFIX}{k}"
            continue
        # Multiple gate drivers on one canonical net: deduplicate identical
        # parallel drivers; anything else is a real multi-driver defect.
        keep = indices[0]
        keep_sig = _gate_signature(design.gates[keep])
        offenders: List[int] = []
        for idx in indices[1:]:
            if _gate_signature(design.gates[idx]) == keep_sig:
                drop.add(idx)
                deduplicated.append(design.gates[idx].name)
                diagnostics.append(
                    Diagnostic(
                        rule="FE003",
                        severity="repair",
                        message=(
                            f"dropped gate {design.gates[idx].name!r}: "
                            f"identical parallel driver of {net!r} "
                            f"(kept {design.gates[keep].name!r})"
                        ),
                        loc=design.gates[idx].loc,
                    )
                )
            else:
                offenders.append(idx)
        if offenders:
            names = [design.gates[i].name for i in [keep, *offenders]]
            message = f"net {net!r} driven by multiple distinct gates {names}"
            if strict:
                raise CanonicalizationError(
                    f"{message} [DRC003]", loc=design.gates[offenders[0]].loc
                )
            diagnostics.append(
                Diagnostic(
                    "DRC003", "error", message, loc=design.gates[offenders[0]].loc
                )
            )
            for k, idx in enumerate(offenders):
                renamed_outputs[idx] = f"{net}{CONFLICT_SUFFIX}{k + 1}"

    # -- 4. lower ------------------------------------------------------
    circuit = Circuit(
        design.name,
        primary_inputs=design.primary_inputs,
        primary_outputs=design.primary_outputs,
    )
    for idx, gate in enumerate(design.gates):
        if idx in drop:
            continue
        circuit.add_gate(
            Gate(
                name=gate.name,
                cell_type=gate.cell_type,
                inputs=[canon(n) for n in gate.inputs],
                output=renamed_outputs.get(idx, canon(gate.output)),
                size_index=gate.size_index,
            )
        )

    repairs: List[str] = []
    for po in sorted(repaired_po_sources, key=lambda n: po_order[n]):
        source = repaired_po_sources[po]
        buf_name = REPAIR_PREFIX + po
        while circuit.has_gate(buf_name):
            buf_name += "_"
        circuit.add_gate(
            Gate(name=buf_name, cell_type="BUF", inputs=[source], output=po)
        )
        repairs.append(buf_name)

    return CanonicalizeResult(
        circuit=circuit,
        net_map=net_map,
        repairs=repairs,
        deduplicated=deduplicated,
        diagnostics=diagnostics,
    )
