"""Raw netlist front-end IR.

Every netlist reader in the package — the structural-Verilog parser, the
ISCAS ``.bench`` reader and the Python circuit builders — produces a
:class:`RawNetlist`: an *unelaborated* description of modules, ports,
wires, instances and ``assign`` aliases, annotated with source locations.
One shared pipeline then turns it into the analysable
:class:`~repro.netlist.circuit.Circuit` the engines consume::

    RawNetlist --elaborate--> FlatDesign --canonicalize--> Circuit

* :mod:`repro.netlist.elaborate` flattens hierarchy (module instantiation
  with port maps, bus/vector expansion, parameterized widths) into a
  :class:`FlatDesign` of scalar gates plus alias pairs;
* :mod:`repro.netlist.canonical` merges the ``assign``-aliased nets with a
  union-find pass and repairs benign multi-driver patterns, producing the
  final :class:`~repro.netlist.circuit.Circuit`.

The raw IR is deliberately dumb: names are unresolved, bus ranges are
unevaluated expressions (they may reference parameters), and nothing is
checked beyond local well-formedness.  All semantic checks live in the
elaboration and canonicalization passes so every front end shares them.

Net expressions
---------------
Connections and assign sides are :class:`NetExpr` trees:

* :class:`Id` — a plain net reference (``a`` — scalar, or a full bus);
* :class:`Select` — a bit- or part-select (``a[3]``, ``a[7:4]``);
* :class:`Concat` — a concatenation (``{a, b[1], c}``).

Index expressions inside selects and bus ranges are tiny arithmetic trees
(:data:`IndexExpr`): an ``int`` literal, a ``str`` parameter reference, or a
``(op, lhs, rhs)`` / ``("neg", operand)`` tuple; :func:`eval_index` folds
one to an integer under a parameter environment.  Plain strings are
accepted anywhere a :class:`NetExpr` is expected and mean ``Id(string)``,
which keeps the ``.bench`` reader and the builders free of ceremony.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

#: Input pin names of library (leaf) cells, in pin order: the output pin is
#: ``Y``; a gate with N inputs uses the first N letters.
INPUT_PIN_ORDER = "ABCDEFGHIJKLMNOP"

#: Index expressions: int literal | parameter name | (op, lhs, rhs) |
#: ("neg", operand).  Kept as plain tuples so the AST stays trivially
#: picklable and hashable.
IndexExpr = Union[int, str, Tuple[object, ...]]


@dataclass(frozen=True)
class SourceLoc:
    """Line/column of a construct in its source text (both 1-based)."""

    line: int
    col: int

    def __str__(self) -> str:
        return f"line {self.line}, column {self.col}"


class FrontendError(Exception):
    """Base class for all netlist front-end failures.

    Carries the source location and the offending token when known, so
    parse and elaboration errors point at the construct that caused them.
    """

    def __init__(
        self,
        message: str,
        loc: Optional[SourceLoc] = None,
        token: Optional[str] = None,
    ) -> None:
        self.loc = loc
        self.token = token
        prefix = f"{loc}: " if loc is not None else ""
        suffix = f" (at {token!r})" if token else ""
        super().__init__(f"{prefix}{message}{suffix}")
        self.message = message

    @property
    def line(self) -> Optional[int]:
        return self.loc.line if self.loc is not None else None

    @property
    def col(self) -> Optional[int]:
        return self.loc.col if self.loc is not None else None


class ElaborationError(FrontendError):
    """Raised when a raw netlist cannot be flattened to scalar gates."""


class CanonicalizationError(FrontendError):
    """Raised when alias merging meets a defect it cannot repair."""


# ---------------------------------------------------------------------------
# Net expressions
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Id:
    """A plain net reference: a scalar net or a whole bus."""

    name: str


@dataclass(frozen=True)
class Select:
    """A bit-select ``name[msb]`` or part-select ``name[msb:lsb]``."""

    name: str
    msb: IndexExpr
    lsb: Optional[IndexExpr] = None


@dataclass(frozen=True)
class Concat:
    """A concatenation ``{a, b, ...}`` (left part holds the MSBs)."""

    parts: Tuple["NetExpr", ...]


NetExpr = Union[Id, Select, Concat, str]


def eval_index(expr: IndexExpr, params: Mapping[str, int],
               loc: Optional[SourceLoc] = None) -> int:
    """Fold an index expression to an integer under ``params``."""
    if isinstance(expr, bool):  # bool is an int subclass; reject explicitly
        raise ElaborationError(f"invalid index expression {expr!r}", loc)
    if isinstance(expr, int):
        return expr
    if isinstance(expr, str):
        try:
            return params[expr]
        except KeyError:
            raise ElaborationError(
                f"unknown parameter {expr!r} in index expression", loc,
                token=expr,
            ) from None
    op = expr[0]
    if op == "neg":
        return -eval_index(expr[1], params, loc)  # type: ignore[arg-type]
    lhs = eval_index(expr[1], params, loc)  # type: ignore[arg-type]
    rhs = eval_index(expr[2], params, loc)  # type: ignore[arg-type]
    if op == "+":
        return lhs + rhs
    if op == "-":
        return lhs - rhs
    if op == "*":
        return lhs * rhs
    if op in ("/", "%"):
        if rhs == 0:
            raise ElaborationError("division by zero in index expression", loc)
        return lhs // rhs if op == "/" else lhs % rhs
    raise ElaborationError(f"unknown index operator {op!r}", loc)


def format_expr(expr: NetExpr) -> str:
    """Render a net expression back to source-ish text (for messages/emit)."""
    if isinstance(expr, str):
        return expr
    if isinstance(expr, Id):
        return expr.name
    if isinstance(expr, Select):
        if expr.lsb is None:
            return f"{expr.name}[{format_index(expr.msb)}]"
        return f"{expr.name}[{format_index(expr.msb)}:{format_index(expr.lsb)}]"
    return "{" + ", ".join(format_expr(p) for p in expr.parts) + "}"


def format_index(expr: IndexExpr) -> str:
    if isinstance(expr, int):
        return str(expr)
    if isinstance(expr, str):
        return expr
    op = expr[0]
    if op == "neg":
        return f"-{format_index(expr[1])}"  # type: ignore[arg-type]
    return (f"{format_index(expr[1])}{op}"  # type: ignore[arg-type]
            f"{format_index(expr[2])}")  # type: ignore[arg-type]


# ---------------------------------------------------------------------------
# Declarations / statements
# ---------------------------------------------------------------------------
@dataclass
class PortDecl:
    """One module port: direction plus an optional (unevaluated) bus range."""

    name: str
    direction: str  # "input" | "output"
    msb: Optional[IndexExpr] = None
    lsb: Optional[IndexExpr] = None
    loc: Optional[SourceLoc] = None

    @property
    def is_vector(self) -> bool:
        return self.msb is not None


@dataclass
class NetDecl:
    """One ``wire`` declaration (scalar or vector)."""

    name: str
    msb: Optional[IndexExpr] = None
    lsb: Optional[IndexExpr] = None
    loc: Optional[SourceLoc] = None


@dataclass
class RawInstance:
    """One instantiation: of a module (hierarchy) or of a library cell (leaf).

    Exactly one of ``named`` / ``positional`` is non-``None`` (an instance
    with an empty connection list counts as positional).  For leaf cells the
    conventions match the historical flat parser: named pin ``Y`` is the
    output and the remaining pins are inputs sorted by pin name; positional
    connections put the output first.  ``size_index`` carries the discrete
    size for instances converted from an existing :class:`Gate` (it has no
    textual syntax and defaults to 0).
    """

    name: str
    target: str
    named: Optional[Dict[str, Optional[NetExpr]]] = None
    positional: Optional[List[NetExpr]] = None
    param_overrides: Dict[str, IndexExpr] = field(default_factory=dict)
    size_index: int = 0
    loc: Optional[SourceLoc] = None


@dataclass
class RawAssign:
    """One alias statement ``assign lhs = rhs;`` (net-to-net only)."""

    lhs: NetExpr
    rhs: NetExpr
    loc: Optional[SourceLoc] = None


@dataclass
class RawModule:
    """One unelaborated module."""

    name: str
    port_order: List[str] = field(default_factory=list)
    ports: Dict[str, PortDecl] = field(default_factory=dict)
    nets: Dict[str, NetDecl] = field(default_factory=dict)
    params: Dict[str, IndexExpr] = field(default_factory=dict)
    instances: List[RawInstance] = field(default_factory=list)
    assigns: List[RawAssign] = field(default_factory=list)
    loc: Optional[SourceLoc] = None

    # -- construction helpers (used by bench.py and the builders) --------
    def add_port(self, name: str, direction: str,
                 msb: Optional[IndexExpr] = None,
                 lsb: Optional[IndexExpr] = None,
                 loc: Optional[SourceLoc] = None) -> PortDecl:
        if name in self.ports:
            raise ElaborationError(
                f"port {name!r} declared twice in module {self.name!r}", loc,
                token=name,
            )
        decl = PortDecl(name=name, direction=direction, msb=msb, lsb=lsb, loc=loc)
        self.ports[name] = decl
        if name not in self.port_order:
            self.port_order.append(name)
        return decl

    def add_wire(self, name: str, msb: Optional[IndexExpr] = None,
                 lsb: Optional[IndexExpr] = None,
                 loc: Optional[SourceLoc] = None) -> NetDecl:
        decl = NetDecl(name=name, msb=msb, lsb=lsb, loc=loc)
        self.nets.setdefault(name, decl)
        return decl

    def add_instance(self, instance: RawInstance) -> RawInstance:
        self.instances.append(instance)
        return instance

    def add_assign(self, lhs: NetExpr, rhs: NetExpr,
                   loc: Optional[SourceLoc] = None) -> RawAssign:
        assign = RawAssign(lhs=lhs, rhs=rhs, loc=loc)
        self.assigns.append(assign)
        return assign

    def input_ports(self) -> List[PortDecl]:
        return [p for p in self.ports.values() if p.direction == "input"]

    def output_ports(self) -> List[PortDecl]:
        return [p for p in self.ports.values() if p.direction == "output"]


@dataclass
class RawNetlist:
    """A set of raw modules (insertion-ordered) with an optional default top."""

    modules: Dict[str, RawModule] = field(default_factory=dict)
    top: Optional[str] = None

    def add_module(self, module: RawModule) -> RawModule:
        if module.name in self.modules:
            raise ElaborationError(
                f"module {module.name!r} defined twice", module.loc,
                token=module.name,
            )
        self.modules[module.name] = module
        return module

    def module(self, name: str) -> RawModule:
        try:
            return self.modules[name]
        except KeyError:
            known = ", ".join(self.modules) or "<none>"
            raise ElaborationError(
                f"no module named {name!r} (known: {known})", token=name
            ) from None

    def top_module(self, top: Optional[str] = None) -> RawModule:
        """Resolve the top module: explicit name, recorded default, or the
        unique module never instantiated by another module."""
        if top is not None:
            return self.module(top)
        if self.top is not None:
            return self.module(self.top)
        if not self.modules:
            raise ElaborationError("netlist contains no modules")
        if len(self.modules) == 1:
            return next(iter(self.modules.values()))
        instantiated = {
            inst.target
            for module in self.modules.values()
            for inst in module.instances
            if inst.target in self.modules
        }
        roots = [m for name, m in self.modules.items() if name not in instantiated]
        if len(roots) == 1:
            return roots[0]
        names = sorted(m.name for m in roots) if roots else sorted(self.modules)
        raise ElaborationError(
            f"cannot infer the top module (candidates: {names}); "
            f"pass top= explicitly"
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_circuit(cls, circuit: "Circuit") -> "RawNetlist":  # noqa: F821
        """Wrap an existing flat :class:`Circuit` as a single-module netlist.

        Gate order, pin order, port order, names and size indices are all
        preserved, so elaborating the result reproduces the circuit exactly.
        This is how the Python builders join the shared front-end path, and
        the starting point for hierarchical re-emission.
        """
        module = RawModule(name=circuit.name)
        for net in circuit.primary_inputs:
            module.add_port(net, "input")
        for net in circuit.primary_outputs:
            module.add_port(net, "output")
        port_names = set(circuit.primary_inputs) | set(circuit.primary_outputs)
        for gate in circuit.gates.values():
            if gate.output not in port_names:
                module.add_wire(gate.output)
            named: Dict[str, Optional[NetExpr]] = {"Y": Id(gate.output)}
            for pin, net in zip(INPUT_PIN_ORDER, gate.inputs, strict=False):
                named[pin] = Id(net)
            module.add_instance(
                RawInstance(
                    name=gate.name,
                    target=gate.cell_type,
                    named=named,
                    size_index=gate.size_index,
                )
            )
        return cls(modules={module.name: module}, top=module.name)


# ---------------------------------------------------------------------------
# Flat (elaborated, pre-canonicalization) design
# ---------------------------------------------------------------------------
@dataclass
class FlatGate:
    """One scalar leaf-cell instance after elaboration."""

    name: str
    cell_type: str
    inputs: List[str]
    output: str
    size_index: int = 0
    loc: Optional[SourceLoc] = None


@dataclass
class FlatDesign:
    """Hierarchy-free design: scalar gates plus unresolved alias pairs.

    Produced by :func:`repro.netlist.elaborate.flatten_netlist`; consumed by
    :func:`repro.netlist.canonical.canonicalize_design`, which merges the
    ``aliases`` and lowers to a :class:`~repro.netlist.circuit.Circuit`.
    """

    name: str
    primary_inputs: List[str] = field(default_factory=list)
    primary_outputs: List[str] = field(default_factory=list)
    gates: List[FlatGate] = field(default_factory=list)
    aliases: List[Tuple[str, str]] = field(default_factory=list)
    alias_locs: List[Optional[SourceLoc]] = field(default_factory=list)

    def add_alias(self, lhs: str, rhs: str,
                  loc: Optional[SourceLoc] = None) -> None:
        self.aliases.append((lhs, rhs))
        self.alias_locs.append(loc)


def expand_range(msb: int, lsb: int) -> List[int]:
    """Bit indices of a ``[msb:lsb]`` range, MSB first (either direction)."""
    step = -1 if msb >= lsb else 1
    return list(range(msb, lsb + step, step))


def bus_bits(name: str, msb: int, lsb: int) -> List[str]:
    """Bit-blasted net names of a vector, MSB first: ``name[i]``."""
    return [f"{name}[{i}]" for i in expand_range(msb, lsb)]


__all__ = [
    "INPUT_PIN_ORDER",
    "Concat",
    "CanonicalizationError",
    "ElaborationError",
    "FlatDesign",
    "FlatGate",
    "FrontendError",
    "Id",
    "IndexExpr",
    "NetDecl",
    "NetExpr",
    "PortDecl",
    "RawAssign",
    "RawInstance",
    "RawModule",
    "RawNetlist",
    "Select",
    "SourceLoc",
    "bus_bits",
    "eval_index",
    "expand_range",
    "format_expr",
    "format_index",
]

from typing import TYPE_CHECKING  # noqa: E402

if TYPE_CHECKING:  # pragma: no cover - circular-import guard
    from repro.netlist.circuit import Circuit

# Sequence import is used in annotations of downstream modules re-exporting
# from here; keep the namespace tidy for linting.
_ = (Sequence,)
