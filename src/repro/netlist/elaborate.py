"""Hierarchy elaboration: RawNetlist -> FlatDesign -> Circuit.

This pass turns the unelaborated front-end IR (:mod:`repro.netlist.ast`)
into a flat, scalar design:

* **module instantiation** is expanded recursively; every net and gate of a
  child instance is prefixed with the instance path (``u1.n3``,
  ``u1.u2.g7``);
* **buses** are bit-blasted MSB-first into scalar nets named ``bus[i]``;
* **parameters** (module defaults plus per-instance ``#(.N(v))`` overrides)
  are folded into integers before any range is evaluated, so parameterized
  widths work across the hierarchy;
* **port maps** (named or positional, with width checking) bind child ports
  to parent nets directly — connecting through a port never costs a gate;
* **leaf cells** (any instantiated name that is not a module) become
  :class:`~repro.netlist.ast.FlatGate` records using the library pin
  convention: named pin ``Y`` is the output and the remaining pins are
  inputs in pin-name order; positional connections put the output first.

``assign`` statements are *not* resolved here — they are emitted as alias
pairs for :func:`repro.netlist.canonical.canonicalize_design`, which merges
them with a union-find pass and performs driver repair.  The two passes
together are the single lowering path to :class:`Circuit` shared by the
Verilog reader, the ``.bench`` reader and the Python circuit builders.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.netlist.ast import (
    Concat,
    ElaborationError,
    FlatDesign,
    FlatGate,
    Id,
    NetExpr,
    RawInstance,
    RawModule,
    RawNetlist,
    Select,
    SourceLoc,
    bus_bits,
    eval_index,
)
from repro.netlist.canonical import CanonicalizeResult, canonicalize_design
from repro.netlist.circuit import Circuit

#: Separator between instance-path components in flattened names.
HIER_SEP = "."


class _Scope:
    """Symbol table of one module instance during expansion.

    Maps local net names to their global bit lists (MSB first).  Scalars are
    one-element lists.  Undeclared names referenced in expressions become
    implicit scalar wires, as in Verilog.
    """

    def __init__(self, module: RawModule, prefix: str,
                 params: Mapping[str, int]) -> None:
        self.module = module
        self.prefix = prefix
        self.params = params
        self.symbols: Dict[str, List[str]] = {}

    def declare(self, name: str, msb: Optional[int], lsb: Optional[int],
                bits: Optional[List[str]] = None) -> List[str]:
        if bits is None:
            if msb is None:
                bits = [self.prefix + name]
            else:
                assert lsb is not None
                bits = [self.prefix + b for b in bus_bits(name, msb, lsb)]
        self.symbols[name] = bits
        return bits

    def lookup(self, name: str) -> Optional[List[str]]:
        return self.symbols.get(name)

    def implicit(self, name: str) -> List[str]:
        """Implicit scalar wire for an undeclared reference."""
        return self.symbols.setdefault(name, [self.prefix + name])


def _eval_range(
    msb: Optional[object], lsb: Optional[object],
    params: Mapping[str, int], loc: Optional[SourceLoc],
) -> Tuple[Optional[int], Optional[int]]:
    if msb is None:
        return None, None
    m = eval_index(msb, params, loc)  # type: ignore[arg-type]
    low = eval_index(lsb, params, loc) if lsb is not None else m  # type: ignore[arg-type]
    return m, low


def _resolve(expr: NetExpr, scope: _Scope,
             loc: Optional[SourceLoc] = None) -> List[str]:
    """Resolve a net expression to its global bit list (MSB first)."""
    if isinstance(expr, str):
        expr = Id(expr)
    if isinstance(expr, Id):
        bits = scope.lookup(expr.name)
        if bits is not None:
            return list(bits)
        return list(scope.implicit(expr.name))
    if isinstance(expr, Select):
        msb = eval_index(expr.msb, scope.params, loc)
        lsb = eval_index(expr.lsb, scope.params, loc) if expr.lsb is not None else None
        bits = scope.lookup(expr.name)
        if bits is None:
            # Undeclared base: a constant bit-select like ``n[3]`` names a
            # literal scalar net ``n[3]`` — the form our own writer emits
            # for bit-blasted netlists — so flattened output re-parses.
            if lsb is None:
                return list(scope.implicit(f"{expr.name}[{msb}]"))
            raise ElaborationError(
                f"part-select on undeclared net {expr.name!r}", loc,
                token=expr.name,
            )
        decl = scope.module.ports.get(expr.name) or scope.module.nets.get(expr.name)
        if decl is None or decl.msb is None:
            raise ElaborationError(
                f"bit-select on scalar net {expr.name!r}", loc, token=expr.name
            )
        d_msb, d_lsb = _eval_range(decl.msb, decl.lsb, scope.params, loc)
        assert d_msb is not None and d_lsb is not None

        def bit_pos(i: int) -> int:
            lo, hi = min(d_msb, d_lsb), max(d_msb, d_lsb)
            if not lo <= i <= hi:
                raise ElaborationError(
                    f"index {i} out of range [{d_msb}:{d_lsb}] "
                    f"for net {expr.name!r}", loc, token=str(i),
                )
            # bits are MSB first
            return abs(d_msb - i)

        if lsb is None:
            return [bits[bit_pos(msb)]]
        step = -1 if msb >= lsb else 1
        return [bits[bit_pos(i)] for i in range(msb, lsb + step, step)]
    if isinstance(expr, Concat):
        out: List[str] = []
        for part in expr.parts:
            out.extend(_resolve(part, scope, loc))
        return out
    raise ElaborationError(f"unsupported net expression {expr!r}", loc)


def _child_params(
    child: RawModule, inst: RawInstance, scope: _Scope,
) -> Dict[str, int]:
    """Parameter environment of a child instance.

    Overrides are evaluated in the *parent* scope; defaults are evaluated in
    the child's own (accumulating) environment, so later defaults may
    reference earlier parameters.
    """
    overrides: Dict[str, int] = {}
    for pname, pexpr in inst.param_overrides.items():
        if pname not in child.params:
            raise ElaborationError(
                f"instance {inst.name!r} overrides unknown parameter "
                f"{pname!r} of module {child.name!r}", inst.loc, token=pname,
            )
        overrides[pname] = eval_index(pexpr, scope.params, inst.loc)
    env: Dict[str, int] = {}
    for pname, default in child.params.items():
        if pname in overrides:
            env[pname] = overrides[pname]
        else:
            env[pname] = eval_index(default, env, child.loc)
    return env


def _bind_ports(
    child: RawModule, inst: RawInstance, scope: _Scope,
    child_params: Mapping[str, int], prefix: str,
) -> Dict[str, List[str]]:
    """Resolve an instance's connections to per-port global bit lists."""
    conn_exprs: Dict[str, Optional[NetExpr]] = {}
    if inst.named is not None:
        for port_name in inst.named:
            if port_name not in child.ports:
                raise ElaborationError(
                    f"instance {inst.name!r} connects unknown port "
                    f"{port_name!r} of module {child.name!r}",
                    inst.loc, token=port_name,
                )
        conn_exprs.update(inst.named)
    else:
        positional = inst.positional or []
        if len(positional) > len(child.port_order):
            raise ElaborationError(
                f"instance {inst.name!r} has {len(positional)} connections "
                f"but module {child.name!r} has only "
                f"{len(child.port_order)} ports", inst.loc,
            )
        for port_name, expr in zip(child.port_order, positional):
            conn_exprs[port_name] = expr

    bindings: Dict[str, List[str]] = {}
    for port_name in child.port_order:
        port = child.ports[port_name]
        p_msb, p_lsb = _eval_range(port.msb, port.lsb, child_params, port.loc)
        width = 1 if p_msb is None or p_lsb is None else abs(p_msb - p_lsb) + 1
        expr = conn_exprs.get(port_name)
        if expr is None:
            # Unconnected port: give it fresh (undriven/unread) nets.
            base = f"{prefix}{port_name}"
            if p_msb is None:
                bindings[port_name] = [base]
            else:
                assert p_lsb is not None
                bindings[port_name] = [base + f"[{i}]"
                                       for i in range(width)]
            continue
        bits = _resolve(expr, scope, inst.loc)
        if len(bits) != width:
            raise ElaborationError(
                f"port {port_name!r} of instance {inst.name!r} "
                f"(module {child.name!r}) is {width} bit(s) wide but is "
                f"connected to {len(bits)} bit(s)", inst.loc, token=port_name,
            )
        bindings[port_name] = bits
    return bindings


def _leaf_gate(inst: RawInstance, scope: _Scope, prefix: str) -> FlatGate:
    """Lower a library-cell instance to a scalar :class:`FlatGate`."""

    def one_bit(expr: NetExpr, pin: str) -> str:
        bits = _resolve(expr, scope, inst.loc)
        if len(bits) != 1:
            raise ElaborationError(
                f"pin {pin!r} of leaf instance {inst.name!r} "
                f"({inst.target}) must be one bit wide, got {len(bits)}",
                inst.loc, token=pin,
            )
        return bits[0]

    if inst.named is not None:
        pins = {pin.upper(): expr for pin, expr in inst.named.items()}
        if "Y" not in pins or pins["Y"] is None:
            raise ElaborationError(
                f"instance {inst.name!r} has no output pin .Y(...)", inst.loc,
                token=inst.name,
            )
        output = one_bit(pins.pop("Y"), "Y")  # type: ignore[arg-type]
        inputs = []
        for pin, expr in sorted(pins.items()):
            if expr is None:
                raise ElaborationError(
                    f"input pin {pin!r} of leaf instance {inst.name!r} "
                    f"is unconnected", inst.loc, token=pin,
                )
            inputs.append(one_bit(expr, pin))
    else:
        conns = inst.positional or []
        if len(conns) < 2:
            raise ElaborationError(
                f"instance {inst.name!r} needs an output and at least one "
                f"input", inst.loc, token=inst.name,
            )
        output = one_bit(conns[0], "Y")
        inputs = [one_bit(expr, f"in{i}") for i, expr in enumerate(conns[1:])]
    return FlatGate(
        name=prefix + inst.name,
        cell_type=inst.target,
        inputs=inputs,
        output=output,
        size_index=inst.size_index,
        loc=inst.loc,
    )


def _expand(
    raw: RawNetlist,
    module: RawModule,
    prefix: str,
    params: Dict[str, int],
    port_bindings: Dict[str, List[str]],
    design: FlatDesign,
    stack: Tuple[str, ...],
) -> None:
    if module.name in stack:
        chain = " -> ".join([*stack, module.name])
        raise ElaborationError(
            f"recursive module instantiation: {chain}", module.loc,
            token=module.name,
        )
    stack = (*stack, module.name)

    scope = _Scope(module, prefix, params)
    for port_name, port in module.ports.items():
        bits = port_bindings.get(port_name)
        if bits is not None:
            scope.declare(port_name, None, None, bits=bits)
        else:
            p_msb, p_lsb = _eval_range(port.msb, port.lsb, params, port.loc)
            scope.declare(port_name, p_msb, p_lsb)
    for net_name, net in module.nets.items():
        if net_name in scope.symbols:
            continue  # a port redeclared as wire keeps its port binding
        n_msb, n_lsb = _eval_range(net.msb, net.lsb, params, net.loc)
        scope.declare(net_name, n_msb, n_lsb)

    for inst in module.instances:
        child = raw.modules.get(inst.target)
        if child is None:
            design.gates.append(_leaf_gate(inst, scope, prefix))
            continue
        child_env = _child_params(child, inst, scope)
        child_prefix = f"{prefix}{inst.name}{HIER_SEP}"
        bindings = _bind_ports(child, inst, scope, child_env, child_prefix)
        _expand(raw, child, child_prefix, child_env, bindings, design, stack)

    for assign in module.assigns:
        lhs = _resolve(assign.lhs, scope, assign.loc)
        rhs = _resolve(assign.rhs, scope, assign.loc)
        if len(lhs) != len(rhs):
            raise ElaborationError(
                f"assign width mismatch: left side is {len(lhs)} bit(s), "
                f"right side is {len(rhs)} bit(s)", assign.loc,
            )
        for left, right in zip(lhs, rhs):
            design.add_alias(left, right, assign.loc)


def flatten_netlist(
    raw: RawNetlist,
    top: Optional[str] = None,
    name: Optional[str] = None,
) -> FlatDesign:
    """Flatten a raw netlist to scalar gates plus unresolved alias pairs.

    ``top`` selects the root module (default: the recorded top, else the
    unique module no other module instantiates); ``name`` overrides the
    resulting design name (default: the top module's name).
    """
    top_module = raw.top_module(top)
    design = FlatDesign(name=name or top_module.name)

    params: Dict[str, int] = {}
    for pname, default in top_module.params.items():
        params[pname] = eval_index(default, params, top_module.loc)

    scope = _Scope(top_module, "", params)
    for port_name, port in top_module.ports.items():
        p_msb, p_lsb = _eval_range(port.msb, port.lsb, params, port.loc)
        bits = bus_bits(port_name, p_msb, p_lsb) if p_msb is not None \
            else [port_name]
        if port.direction == "input":
            design.primary_inputs.extend(bits)
        elif port.direction == "output":
            design.primary_outputs.extend(bits)
        else:
            raise ElaborationError(
                f"port {port_name!r} of top module {top_module.name!r} has "
                f"no direction", port.loc, token=port_name,
            )
        scope.symbols[port_name] = bits

    _expand(raw, top_module, "", params, dict(scope.symbols), design, ())
    return design


def elaborate(
    raw: RawNetlist,
    top: Optional[str] = None,
    name: Optional[str] = None,
    strict: bool = True,
) -> Circuit:
    """Flatten + canonicalize a raw netlist down to a :class:`Circuit`."""
    return elaborate_design(raw, top=top, name=name, strict=strict).circuit


def elaborate_design(
    raw: RawNetlist,
    top: Optional[str] = None,
    name: Optional[str] = None,
    strict: bool = True,
) -> CanonicalizeResult:
    """Like :func:`elaborate` but returns the full
    :class:`~repro.netlist.canonical.CanonicalizeResult` (circuit plus net
    map, repairs and diagnostics)."""
    design = flatten_netlist(raw, top=top, name=name)
    return canonicalize_design(design, strict=strict)
