"""ISCAS-85 ``.bench`` format reader and writer.

The ``.bench`` format is the standard distribution format of the ISCAS-85
benchmarks the paper evaluates on::

    # comment
    INPUT(G1)
    INPUT(G2)
    OUTPUT(G17)
    G10 = NAND(G1, G3)
    G17 = NOT(G10)

Every right-hand-side function maps onto one of the library cell types used
throughout this package (``NOT`` -> ``INV``, ``NAND`` with three operands ->
``NAND3``, ...).  ``DFF`` lines are rejected: the reproduction, like the
paper, is restricted to combinational circuits.

The reader builds a :class:`~repro.netlist.ast.RawModule` and lowers it
through the shared elaboration + canonicalization pipeline, so ``.bench``
input gets exactly the same semantics (implicit nets, driver repair,
diagnostics) as structural Verilog.  Parse errors carry the 1-based
line/column and the offending token.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Union

from repro.netlist.ast import (
    FrontendError,
    RawInstance,
    RawModule,
    RawNetlist,
    SourceLoc,
)
from repro.netlist.circuit import Circuit
from repro.netlist.elaborate import elaborate
from repro.netlist.gate import make_cell_type

_LINE_RE = re.compile(
    r"^\s*(?P<out>[\w\.\[\]]+)\s*=\s*(?P<func>[A-Za-z]+)\s*\((?P<args>[^)]*)\)\s*$"
)
_IO_RE = re.compile(r"^\s*(?P<kind>INPUT|OUTPUT)\s*\((?P<net>[\w\.\[\]]+)\)\s*$", re.I)

#: Mapping from .bench function keywords to library logic functions.
BENCH_FUNCTIONS: Dict[str, str] = {
    "NOT": "INV",
    "INV": "INV",
    "BUF": "BUF",
    "BUFF": "BUF",
    "AND": "AND",
    "NAND": "NAND",
    "OR": "OR",
    "NOR": "NOR",
    "XOR": "XOR",
    "XNOR": "XNOR",
}


class BenchParseError(FrontendError):
    """Raised when a ``.bench`` description cannot be parsed."""


def _loc(lineno: int, line: str, needle: str) -> SourceLoc:
    """Source location of ``needle`` within ``line`` (1-based column)."""
    col = line.find(needle)
    return SourceLoc(lineno, col + 1 if col >= 0 else 1)


def parse_bench_raw(text: str, name: str = "bench_circuit") -> RawNetlist:
    """Parse ``.bench`` text into the raw front-end IR (no elaboration)."""
    module = RawModule(name=name)
    gate_lines: List[tuple] = []

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].rstrip()
        if not line.strip():
            continue
        io_match = _IO_RE.match(line)
        if io_match:
            net = io_match.group("net")
            kind = io_match.group("kind").upper()
            direction = "input" if kind == "INPUT" else "output"
            module.add_port(net, direction, loc=_loc(lineno, line, net))
            continue
        gate_match = _LINE_RE.match(line)
        if gate_match:
            func = gate_match.group("func").upper()
            loc = _loc(lineno, line, gate_match.group("func"))
            if func == "DFF":
                raise BenchParseError(
                    "sequential element DFF is not supported "
                    "(combinational circuits only)", loc, token="DFF",
                )
            args = [a.strip() for a in gate_match.group("args").split(",") if a.strip()]
            gate_lines.append((loc, gate_match.group("out"), func, args))
            continue
        stripped = line.strip()
        raise BenchParseError(
            f"cannot parse {raw!r}",
            _loc(lineno, line, stripped),
            token=stripped.split()[0] if stripped.split() else stripped,
        )

    for loc, out, func, args in gate_lines:
        if func not in BENCH_FUNCTIONS:
            raise BenchParseError(f"unknown function {func!r}", loc, token=func)
        logic = BENCH_FUNCTIONS[func]
        if logic in ("INV", "BUF") and len(args) != 1:
            raise BenchParseError(
                f"{func} expects one operand, got {len(args)}", loc, token=func
            )
        if logic not in ("INV", "BUF") and len(args) < 2:
            raise BenchParseError(
                f"{func} expects at least two operands, got {len(args)}",
                loc, token=func,
            )
        cell_type = make_cell_type(logic, len(args))
        module.add_instance(
            RawInstance(
                name=f"g_{out}",
                target=cell_type,
                positional=[out, *args],
                loc=loc,
            )
        )
    return RawNetlist(modules={module.name: module}, top=module.name)


def parse_bench(text: str, name: str = "bench_circuit") -> Circuit:
    """Parse ``.bench`` text into a :class:`~repro.netlist.circuit.Circuit`.

    Parameters
    ----------
    text:
        Full contents of a ``.bench`` file.
    name:
        Name to give the resulting circuit.
    """
    raw = parse_bench_raw(text, name=name)
    try:
        return elaborate(raw, name=name)
    except BenchParseError:
        raise
    except FrontendError as exc:
        raise BenchParseError(exc.message, exc.loc, exc.token) from exc


def parse_bench_file(path: Union[str, Path]) -> Circuit:
    """Parse a ``.bench`` file from disk; the circuit is named after the file stem."""
    path = Path(path)
    return parse_bench(path.read_text(), name=path.stem)


_WRITE_FUNCTIONS = {
    "INV": "NOT",
    "BUF": "BUFF",
    "AND": "AND",
    "NAND": "NAND",
    "OR": "OR",
    "NOR": "NOR",
    "XOR": "XOR",
    "XNOR": "XNOR",
}


def write_bench(circuit: Circuit) -> str:
    """Serialise ``circuit`` back to ``.bench`` text.

    Complex cells (AOI21, OAI21, MUX2) have no ``.bench`` equivalent and are
    rejected; the parametric generators only emit primitive functions, so
    round-tripping generator output always works.
    """
    lines = [f"# {circuit.name}"]
    lines.extend(f"INPUT({net})" for net in circuit.primary_inputs)
    lines.extend(f"OUTPUT({net})" for net in circuit.primary_outputs)
    for gate in circuit:
        func = gate.function
        if func not in _WRITE_FUNCTIONS:
            raise BenchParseError(
                f"cell type {gate.cell_type!r} has no .bench representation"
            )
        operands = ", ".join(gate.inputs)
        lines.append(f"{gate.output} = {_WRITE_FUNCTIONS[func]}({operands})")
    return "\n".join(lines) + "\n"
