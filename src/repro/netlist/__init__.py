"""Gate-level combinational netlist substrate.

The data model is deliberately small: a :class:`Gate` is an instance of a
library cell type driving exactly one net, and a :class:`Circuit` is a DAG
of gates connected by named nets with explicit primary inputs and outputs.

Readers/writers are provided for the ISCAS-85 ``.bench`` format and for a
small structural-Verilog subset so real benchmark netlists can be dropped
in alongside the parametric generators in :mod:`repro.circuits`.
"""

from repro.netlist.gate import Gate
from repro.netlist.circuit import Circuit, CircuitStats
from repro.netlist.bench import parse_bench, parse_bench_file, write_bench
from repro.netlist.verilog import parse_verilog, write_verilog
from repro.netlist.validate import ValidationError, validate_circuit
from repro.netlist.simulate import simulate, simulate_outputs

__all__ = [
    "simulate",
    "simulate_outputs",
    "Gate",
    "Circuit",
    "CircuitStats",
    "parse_bench",
    "parse_bench_file",
    "write_bench",
    "parse_verilog",
    "write_verilog",
    "ValidationError",
    "validate_circuit",
]
