"""Gate-level combinational netlist substrate.

The data model is deliberately small: a :class:`Gate` is an instance of a
library cell type driving exactly one net, and a :class:`Circuit` is a DAG
of gates connected by named nets with explicit primary inputs and outputs.

Readers/writers are provided for the ISCAS-85 ``.bench`` format and for a
small structural-Verilog subset so real benchmark netlists can be dropped
in alongside the parametric generators in :mod:`repro.circuits`.
"""

from repro.netlist.gate import Gate
from repro.netlist.circuit import Circuit, CircuitStats
from repro.netlist.ast import (
    CanonicalizationError,
    ElaborationError,
    FlatDesign,
    FrontendError,
    RawInstance,
    RawModule,
    RawNetlist,
    SourceLoc,
)
from repro.netlist.elaborate import elaborate, elaborate_design, flatten_netlist
from repro.netlist.canonical import CanonicalizeResult, canonicalize_design
from repro.netlist.bench import parse_bench, parse_bench_file, parse_bench_raw, write_bench
from repro.netlist.verilog import (
    parse_verilog,
    parse_verilog_file,
    parse_verilog_raw,
    write_verilog,
    write_verilog_netlist,
)
from repro.netlist.validate import ValidationError, validate_circuit
from repro.netlist.simulate import simulate, simulate_outputs

__all__ = [
    "simulate",
    "simulate_outputs",
    "Gate",
    "Circuit",
    "CircuitStats",
    "CanonicalizationError",
    "CanonicalizeResult",
    "ElaborationError",
    "FlatDesign",
    "FrontendError",
    "RawInstance",
    "RawModule",
    "RawNetlist",
    "SourceLoc",
    "canonicalize_design",
    "elaborate",
    "elaborate_design",
    "flatten_netlist",
    "parse_bench",
    "parse_bench_file",
    "parse_bench_raw",
    "write_bench",
    "parse_verilog",
    "parse_verilog_file",
    "parse_verilog_raw",
    "write_verilog",
    "write_verilog_netlist",
    "ValidationError",
    "validate_circuit",
]
