"""Gate instances.

A :class:`Gate` is one instance of a library cell type.  It references its
cell type by name (the library itself lives in :mod:`repro.library`), its
current discrete size by index, the nets it reads and the single net it
drives.  Keeping the gate a plain data object (no back-pointer into the
library) makes circuits cheap to copy and easy to serialise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


# Cell-type names understood by every parser, generator and the synthetic
# library.  Arities are the *maximum* supported fanin per type; N-input
# variants (e.g. NAND3, NAND4) are separate types created on demand by the
# library.
KNOWN_FUNCTIONS = (
    "INV",
    "BUF",
    "NAND",
    "NOR",
    "AND",
    "OR",
    "XOR",
    "XNOR",
    "AOI21",
    "OAI21",
    "MUX2",
)


@dataclass
class Gate:
    """One cell instance in a combinational circuit.

    Parameters
    ----------
    name:
        Unique instance name within the circuit.
    cell_type:
        Library cell-type name, e.g. ``"NAND2"`` or ``"INV"``.  The numeric
        suffix encodes the fanin for multi-input functions.
    inputs:
        Names of the nets read by this gate, in pin order.
    output:
        Name of the single net driven by this gate.
    size_index:
        Index into the cell type's discrete size list.  Size 0 is the
        smallest (minimum-area, weakest-drive) variant.
    """

    name: str
    cell_type: str
    inputs: List[str]
    output: str
    size_index: int = 0
    attributes: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("gate name must be non-empty")
        if not self.output:
            raise ValueError(f"gate {self.name!r} must drive a net")
        if not self.inputs:
            raise ValueError(f"gate {self.name!r} must have at least one input")
        if self.size_index < 0:
            raise ValueError(
                f"gate {self.name!r} size_index must be non-negative, "
                f"got {self.size_index}"
            )
        self.inputs = list(self.inputs)

    @property
    def fanin(self) -> int:
        """Number of input pins."""
        return len(self.inputs)

    @property
    def function(self) -> str:
        """Base logic function with the arity suffix stripped.

        ``"NAND3"`` -> ``"NAND"``, ``"INV"`` -> ``"INV"``.
        """
        return strip_arity(self.cell_type)

    def with_size(self, size_index: int) -> "Gate":
        """Return a copy of this gate at a different discrete size."""
        return Gate(
            name=self.name,
            cell_type=self.cell_type,
            inputs=list(self.inputs),
            output=self.output,
            size_index=size_index,
            attributes=dict(self.attributes),
        )

    def copy(self) -> "Gate":
        """Return a deep-enough copy (nets are strings, so shallow lists suffice)."""
        return self.with_size(self.size_index)

    def key(self) -> Tuple[str, str, Tuple[str, ...], str, int]:
        """Hashable identity tuple used by structural comparisons in tests."""
        return (self.name, self.cell_type, tuple(self.inputs), self.output, self.size_index)

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        ins = ", ".join(self.inputs)
        return (
            f"Gate({self.name}: {self.cell_type}[{self.size_index}] "
            f"({ins}) -> {self.output})"
        )


def strip_arity(cell_type: str) -> str:
    """Strip a trailing arity from a cell-type name.

    >>> strip_arity("NAND4")
    'NAND'
    >>> strip_arity("INV")
    'INV'
    >>> strip_arity("AOI21")
    'AOI21'
    """
    # Complex cells like AOI21/OAI21/MUX2 keep their digits: they are part of
    # the canonical function name, not an arity suffix.
    for complex_name in ("AOI21", "OAI21", "MUX2"):
        if cell_type == complex_name:
            return cell_type
    base = cell_type.rstrip("0123456789")
    return base if base else cell_type


def make_cell_type(function: str, fanin: int) -> str:
    """Build the canonical cell-type name for ``function`` with ``fanin`` inputs.

    >>> make_cell_type("NAND", 3)
    'NAND3'
    >>> make_cell_type("INV", 1)
    'INV'
    """
    function = function.upper()
    if function in ("INV", "BUF"):
        if fanin != 1:
            raise ValueError(f"{function} must have exactly one input, got {fanin}")
        return function
    if function in ("AOI21", "OAI21"):
        if fanin != 3:
            raise ValueError(f"{function} must have exactly three inputs, got {fanin}")
        return function
    if function == "MUX2":
        if fanin != 3:
            raise ValueError("MUX2 must have exactly three inputs (a, b, sel)")
        return function
    if function in ("NAND", "NOR", "AND", "OR", "XOR", "XNOR"):
        if fanin < 2:
            raise ValueError(f"{function} needs at least two inputs, got {fanin}")
        return f"{function}{fanin}"
    raise ValueError(f"unknown logic function {function!r}")
