"""Combinational circuit DAG.

A :class:`Circuit` owns a set of :class:`~repro.netlist.gate.Gate` instances
connected by named nets.  It provides the structural queries every timing
engine and the optimizer need: topological order, levelization, fanin/fanout
cones, and cheap structural statistics.

Design notes
------------
* Nets are plain strings; each net has at most one driver (a primary input
  or a gate output) and any number of loads.
* The class caches its topological order and invalidates the cache on any
  structural mutation (adding/removing gates).  Re-sizing a gate is *not* a
  structural mutation and does not invalidate anything structural, but it is
  recorded in an append-only *size-change log* so incremental consumers
  (:class:`~repro.core.fullssta.IncrementalReanalysis`, the sizer's
  evaluation caches) can find the dirty cone without re-walking the netlist.
* All queries return data in deterministic order so that optimization runs
  are reproducible.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Set

from repro.netlist.gate import Gate

if TYPE_CHECKING:  # pragma: no cover - circular-import guard (ir imports us)
    from repro.ir.compiled import CompiledCircuit


class CircuitError(Exception):
    """Raised for structural violations while building a circuit."""


@dataclass(frozen=True)
class CircuitStats:
    """Cheap structural summary of a circuit."""

    name: str
    num_gates: int
    num_primary_inputs: int
    num_primary_outputs: int
    num_nets: int
    logic_depth: int
    max_fanout: int
    avg_fanin: float


class Circuit:
    """A combinational gate-level netlist.

    Parameters
    ----------
    name:
        Circuit name (used in reports and serialised files).
    primary_inputs:
        Ordered net names driven from outside the circuit.
    primary_outputs:
        Ordered net names observed outside the circuit.  A primary output
        may also drive internal gates.
    """

    def __init__(
        self,
        name: str,
        primary_inputs: Optional[Sequence[str]] = None,
        primary_outputs: Optional[Sequence[str]] = None,
    ) -> None:
        self.name = name
        self._primary_inputs: List[str] = list(primary_inputs or [])
        self._primary_outputs: List[str] = list(primary_outputs or [])
        self._pi_set: Set[str] = set(self._primary_inputs)
        self._po_set: Set[str] = set(self._primary_outputs)
        self._gates: Dict[str, Gate] = {}
        self._driver: Dict[str, str] = {}  # net -> gate name driving it
        self._loads: Dict[str, List[str]] = {}  # net -> gate names reading it
        self._topo_cache: Optional[List[str]] = None
        self._level_cache: Optional[Dict[str, int]] = None
        self._structure_version: int = 0
        self._size_change_log: List[str] = []
        self._compiled_cache: Optional["CompiledCircuit"] = None
        self._compiled_size_cursor: int = 0

        if len(self._pi_set) != len(self._primary_inputs):
            seen: Set[str] = set()
            for pi in self._primary_inputs:
                if pi in seen:
                    raise CircuitError(f"duplicate primary input {pi!r}")
                seen.add(pi)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_primary_input(self, net: str) -> None:
        """Declare ``net`` as a primary input."""
        if net in self._pi_set:
            raise CircuitError(f"primary input {net!r} already declared")
        if net in self._driver:
            raise CircuitError(f"net {net!r} is already driven by gate {self._driver[net]!r}")
        self._primary_inputs.append(net)
        self._pi_set.add(net)
        self._invalidate()

    def add_primary_output(self, net: str) -> None:
        """Declare ``net`` as a primary output."""
        if net in self._po_set:
            raise CircuitError(f"primary output {net!r} already declared")
        self._primary_outputs.append(net)
        self._po_set.add(net)

    def add_gate(self, gate: Gate) -> Gate:
        """Add a gate instance; returns the gate for chaining."""
        if gate.name in self._gates:
            raise CircuitError(f"duplicate gate name {gate.name!r}")
        if gate.output in self._driver:
            raise CircuitError(
                f"net {gate.output!r} already driven by {self._driver[gate.output]!r}"
            )
        if gate.output in self._pi_set:
            raise CircuitError(f"gate {gate.name!r} drives primary input {gate.output!r}")
        self._gates[gate.name] = gate
        self._driver[gate.output] = gate.name
        for net in gate.inputs:
            self._loads.setdefault(net, []).append(gate.name)
        self._invalidate()
        return gate

    def add(
        self,
        name: str,
        cell_type: str,
        inputs: Sequence[str],
        output: str,
        size_index: int = 0,
    ) -> Gate:
        """Convenience wrapper: build and add a :class:`Gate` in one call."""
        return self.add_gate(Gate(name, cell_type, list(inputs), output, size_index))

    def remove_gate(self, name: str) -> Gate:
        """Remove the gate called ``name`` and return it."""
        gate = self._gates.pop(name, None)
        if gate is None:
            raise CircuitError(f"no gate named {name!r}")
        del self._driver[gate.output]
        for net in gate.inputs:
            loads = self._loads.get(net, [])
            if name in loads:
                loads.remove(name)
            if not loads and net in self._loads:
                del self._loads[net]
        self._invalidate()
        return gate

    def replace_gate(self, gate: Gate) -> None:
        """Replace an existing gate of the same name (size changes, etc.).

        The replacement must keep the same output net; inputs may change.
        """
        old = self._gates.get(gate.name)
        if old is None:
            raise CircuitError(f"no gate named {gate.name!r} to replace")
        if old.output != gate.output:
            raise CircuitError(
                f"replace_gate cannot change the driven net "
                f"({old.output!r} -> {gate.output!r})"
            )
        structural = list(old.inputs) != list(gate.inputs)
        if structural:
            for net in old.inputs:
                loads = self._loads.get(net, [])
                if gate.name in loads:
                    loads.remove(gate.name)
                if not loads and net in self._loads:
                    del self._loads[net]
            for net in gate.inputs:
                self._loads.setdefault(net, []).append(gate.name)
        self._gates[gate.name] = gate
        if structural:
            self._invalidate()

    def set_size(self, gate_name: str, size_index: int) -> None:
        """Set the discrete size of a gate in place (no structural invalidation).

        Actual changes (new index differs from the current one) are appended
        to the size-change log consumed by incremental re-analysis; setting a
        gate to its current size is a no-op and is not logged.
        """
        gate = self.gate(gate_name)
        if gate.size_index != size_index:
            gate.size_index = size_index
            self._size_change_log.append(gate_name)

    def _invalidate(self) -> None:
        self._topo_cache = None
        self._level_cache = None
        self._structure_version += 1

    # ------------------------------------------------------------------
    # Compiled IR
    # ------------------------------------------------------------------
    def compiled(self, verify: Optional[bool] = None) -> "CompiledCircuit":
        """The circuit's array-native IR, lowered once per structure version.

        Every engine (FASSTA, FULLSSTA, DSTA, Monte Carlo, criticality,
        incremental re-analysis) consumes the *same*
        :class:`~repro.ir.compiled.CompiledCircuit` instance for a given
        structure.  Structural mutations bump ``structure_version`` and the
        next call relowers; size-only changes made through :meth:`set_size`
        refresh the compiled ``size_index`` array in place without
        recompiling.  (Direct ``Gate.size_index`` writes bypass the
        size-change log and therefore the refresh — the same contract
        incremental re-analysis already imposes.)

        ``verify`` runs :func:`repro.verify.ir_checks.verify_compiled` over
        every *fresh* lowering (debug/test mode; the test suite enables it
        globally via the ``REPRO_VERIFY_IR`` environment variable, which is
        also the default when ``verify`` is ``None``).  ``verify=True`` on a
        cache hit re-verifies the cached instance, catching external
        mutation of the IR arrays.
        """
        from repro.ir.compiled import lower_circuit  # local: avoids a cycle

        if verify is None:
            verify = bool(os.environ.get("REPRO_VERIFY_IR"))
            verify_cached = False
        else:
            verify_cached = verify

        cache = self._compiled_cache
        if cache is None or cache.structure_version != self._structure_version:
            cache = lower_circuit(self)
            self._compiled_cache = cache
            self._compiled_size_cursor = len(self._size_change_log)
            verify_cached = verify
        else:
            cursor = self._compiled_size_cursor
            if cursor != len(self._size_change_log):
                cache.refresh_sizes(self, self._size_change_log[cursor:])
                self._compiled_size_cursor = len(self._size_change_log)
        if verify_cached:
            from repro.verify.ir_checks import verify_compiled  # local: cycle

            verify_compiled(cache, self)
        return cache

    # ------------------------------------------------------------------
    # Change tracking (consumed by incremental re-analysis)
    # ------------------------------------------------------------------
    @property
    def structure_version(self) -> int:
        """Monotone counter bumped on every structural mutation.

        Consumers caching structure-derived data (topological order,
        extracted subcircuits, levelized propagation plans) compare this
        against the version they cached at.
        """
        return self._structure_version

    @property
    def size_change_cursor(self) -> int:
        """Current position in the append-only size-change log.

        Remember the cursor, mutate sizes through :meth:`set_size`, then call
        :meth:`size_changes_since` with the remembered value to learn exactly
        which gates were resized in between.
        """
        return len(self._size_change_log)

    def size_changes_since(self, cursor: int) -> List[str]:
        """Gate names resized (via :meth:`set_size`) since ``cursor``.

        Names appear in mutation order and may repeat; callers typically
        de-duplicate into a dirty set.  Direct mutation of
        ``Gate.size_index`` bypasses the log — incremental consumers rely on
        all persistent resizes going through :meth:`set_size`.
        """
        if cursor < 0:
            raise CircuitError("size-change cursor must be non-negative")
        return self._size_change_log[cursor:]

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def primary_inputs(self) -> List[str]:
        """Ordered list of primary-input net names."""
        return list(self._primary_inputs)

    @property
    def primary_outputs(self) -> List[str]:
        """Ordered list of primary-output net names."""
        return list(self._primary_outputs)

    @property
    def gates(self) -> Dict[str, Gate]:
        """Mapping of gate name to :class:`Gate` (live view, do not mutate keys)."""
        return self._gates

    def gate(self, name: str) -> Gate:
        """Return the gate called ``name``."""
        try:
            return self._gates[name]
        except KeyError:
            raise CircuitError(f"no gate named {name!r}") from None

    def has_gate(self, name: str) -> bool:
        return name in self._gates

    def num_gates(self) -> int:
        return len(self._gates)

    def nets(self) -> List[str]:
        """All net names: primary inputs plus every gate output."""
        nets = list(self._primary_inputs)
        nets.extend(g.output for g in self._gates.values())
        return nets

    def is_primary_input(self, net: str) -> bool:
        return net in self._pi_set

    def is_primary_output(self, net: str) -> bool:
        return net in self._po_set

    def driver_of(self, net: str) -> Optional[Gate]:
        """Gate driving ``net``, or ``None`` if it is a primary input."""
        name = self._driver.get(net)
        return self._gates[name] if name is not None else None

    def loads_of(self, net: str) -> List[Gate]:
        """Gates reading ``net`` (deterministic order of insertion)."""
        return [self._gates[n] for n in self._loads.get(net, [])]

    def load_names(self, net: str) -> List[str]:
        """Names of the gates reading ``net`` (same order as :meth:`loads_of`).

        Cheaper than :meth:`loads_of` on hot paths (the IR lowering walks
        every net) because no :class:`Gate` objects are materialised.
        """
        return list(self._loads.get(net, []))

    def fanout_gates(self, gate_name: str) -> List[Gate]:
        """Gates directly driven by the output of ``gate_name``."""
        gate = self.gate(gate_name)
        return self.loads_of(gate.output)

    def fanin_gates(self, gate_name: str) -> List[Gate]:
        """Gates directly driving the inputs of ``gate_name`` (no PIs)."""
        gate = self.gate(gate_name)
        result = []
        for net in gate.inputs:
            drv = self.driver_of(net)
            if drv is not None:
                result.append(drv)
        return result

    # ------------------------------------------------------------------
    # Ordering / levelization
    # ------------------------------------------------------------------
    def topological_order(self) -> List[str]:
        """Gate names in topological (fanin-before-fanout) order.

        Raises :class:`CircuitError` if the circuit contains a combinational
        cycle.
        """
        if self._topo_cache is not None:
            return list(self._topo_cache)

        in_degree: Dict[str, int] = {}
        for name, gate in self._gates.items():
            deg = 0
            for net in gate.inputs:
                if net in self._driver:
                    deg += 1
            in_degree[name] = deg

        ready = deque(sorted(n for n, d in in_degree.items() if d == 0))
        order: List[str] = []
        while ready:
            name = ready.popleft()
            order.append(name)
            gate = self._gates[name]
            for load_name in self._loads.get(gate.output, []):
                in_degree[load_name] -= 1
                if in_degree[load_name] == 0:
                    ready.append(load_name)

        if len(order) != len(self._gates):
            remaining = sorted(set(self._gates) - set(order))
            raise CircuitError(
                f"circuit {self.name!r} has a combinational cycle involving "
                f"{remaining[:5]}{'...' if len(remaining) > 5 else ''}"
            )
        self._topo_cache = order
        return list(order)

    def reverse_topological_order(self) -> List[str]:
        """Gate names in fanout-before-fanin order."""
        return list(reversed(self.topological_order()))

    def levels(self) -> Dict[str, int]:
        """Logic level of every gate (primary inputs are level 0).

        A gate's level is one more than the maximum level of its fanin
        drivers; gates fed only by primary inputs are level 1.
        """
        if self._level_cache is not None:
            return dict(self._level_cache)
        level: Dict[str, int] = {}
        for name in self.topological_order():
            gate = self._gates[name]
            fan_levels = [0]
            for net in gate.inputs:
                drv = self._driver.get(net)
                if drv is not None:
                    fan_levels.append(level[drv])
            level[name] = max(fan_levels) + 1
        self._level_cache = level
        return dict(level)

    def logic_depth(self) -> int:
        """Maximum logic level across all gates (0 for an empty circuit)."""
        levels = self.levels()
        return max(levels.values()) if levels else 0

    # ------------------------------------------------------------------
    # Cones
    # ------------------------------------------------------------------
    def transitive_fanin(self, gate_name: str, depth: Optional[int] = None) -> Set[str]:
        """Gate names in the transitive fanin cone of ``gate_name``.

        ``depth`` limits the traversal to that many gate levels back
        (``depth=1`` is the direct fanin gates); ``None`` means unlimited.
        The seed gate itself is not included.
        """
        return self._cone(gate_name, depth, forward=False)

    def transitive_fanout(self, gate_name: str, depth: Optional[int] = None) -> Set[str]:
        """Gate names in the transitive fanout cone of ``gate_name``."""
        return self._cone(gate_name, depth, forward=True)

    def _cone(self, gate_name: str, depth: Optional[int], forward: bool) -> Set[str]:
        self.gate(gate_name)  # raise early for unknown names
        visited: Set[str] = set()
        frontier = deque([(gate_name, 0)])
        while frontier:
            name, dist = frontier.popleft()
            if depth is not None and dist >= depth:
                continue
            neighbours = (
                self.fanout_gates(name) if forward else self.fanin_gates(name)
            )
            for neighbour in neighbours:
                if neighbour.name not in visited:
                    visited.add(neighbour.name)
                    frontier.append((neighbour.name, dist + 1))
        visited.discard(gate_name)
        return visited

    def output_cone(self, net: str) -> Set[str]:
        """All gate names that can affect the value/timing of ``net``."""
        drv = self.driver_of(net)
        if drv is None:
            return set()
        cone = self.transitive_fanin(drv.name, depth=None)
        cone.add(drv.name)
        return cone

    # ------------------------------------------------------------------
    # Copying / stats
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "Circuit":
        """Structural deep copy (gates are copied; sizes are preserved)."""
        dup = Circuit(name or self.name, self._primary_inputs, self._primary_outputs)
        for gate in self._gates.values():
            dup.add_gate(gate.copy())
        return dup

    def sizes(self) -> Dict[str, int]:
        """Snapshot of every gate's current size index."""
        return {name: gate.size_index for name, gate in self._gates.items()}

    def apply_sizes(self, sizes: Dict[str, int]) -> None:
        """Bulk-apply a size snapshot produced by :meth:`sizes`."""
        for name, idx in sizes.items():
            self.set_size(name, idx)

    def stats(self) -> CircuitStats:
        """Return a :class:`CircuitStats` structural summary."""
        fanouts = [len(self._loads.get(g.output, [])) for g in self._gates.values()]
        fanins = [g.fanin for g in self._gates.values()]
        return CircuitStats(
            name=self.name,
            num_gates=len(self._gates),
            num_primary_inputs=len(self._primary_inputs),
            num_primary_outputs=len(self._primary_outputs),
            num_nets=len(self.nets()),
            logic_depth=self.logic_depth(),
            max_fanout=max(fanouts) if fanouts else 0,
            avg_fanin=(sum(fanins) / len(fanins)) if fanins else 0.0,
        )

    def __iter__(self) -> Iterator[Gate]:
        for name in self.topological_order():
            yield self._gates[name]

    def __len__(self) -> int:
        return len(self._gates)

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return (
            f"Circuit({self.name!r}, gates={len(self._gates)}, "
            f"pis={len(self._primary_inputs)}, pos={len(self._primary_outputs)})"
        )
