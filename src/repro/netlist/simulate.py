"""Gate-level logic simulation.

A small event-free (levelized) logic simulator used to verify that the
parametric benchmark generators implement the functions they claim (the
ripple adder really adds, the array multiplier really multiplies, ...), and
generally useful for sanity-checking netlists loaded from ``.bench`` or
Verilog files.  Gate sizes do not affect logic values, so the simulator
ignores them.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.netlist.circuit import Circuit
from repro.netlist.gate import Gate


class SimulationError(Exception):
    """Raised when a circuit cannot be simulated (missing inputs, unknown cells)."""


def _evaluate_gate(gate: Gate, values: Mapping[str, bool]) -> bool:
    """Evaluate one gate's boolean function given its input net values."""
    try:
        ins = [values[net] for net in gate.inputs]
    except KeyError as exc:
        raise SimulationError(
            f"gate {gate.name!r} reads net {exc.args[0]!r} which has no value"
        ) from None

    function = gate.function
    if function == "INV":
        return not ins[0]
    if function == "BUF":
        return ins[0]
    if function == "AND":
        return all(ins)
    if function == "NAND":
        return not all(ins)
    if function == "OR":
        return any(ins)
    if function == "NOR":
        return not any(ins)
    if function == "XOR":
        return sum(ins) % 2 == 1
    if function == "XNOR":
        return sum(ins) % 2 == 0
    if function == "AOI21":
        # Y = not((A and B) or C)
        return not ((ins[0] and ins[1]) or ins[2])
    if function == "OAI21":
        # Y = not((A or B) and C)
        return not ((ins[0] or ins[1]) and ins[2])
    if function == "MUX2":
        # Y = sel ? B : A  with pins (A, B, sel)
        return ins[1] if ins[2] else ins[0]
    raise SimulationError(f"gate {gate.name!r}: unknown function {gate.cell_type!r}")


def simulate(circuit: Circuit, inputs: Mapping[str, bool]) -> Dict[str, bool]:
    """Evaluate every net of ``circuit`` for one input assignment.

    ``inputs`` must provide a boolean for every primary input.  Returns the
    value of every net (including internal ones).
    """
    values: Dict[str, bool] = {}
    for net in circuit.primary_inputs:
        if net not in inputs:
            raise SimulationError(f"no value provided for primary input {net!r}")
        values[net] = bool(inputs[net])
    for gate in circuit:
        values[gate.output] = _evaluate_gate(gate, values)
    return values


def simulate_outputs(circuit: Circuit, inputs: Mapping[str, bool]) -> Dict[str, bool]:
    """Like :func:`simulate` but returns only the primary-output values."""
    values = simulate(circuit, inputs)
    return {net: values[net] for net in circuit.primary_outputs}


# ---------------------------------------------------------------------------
# Integer/bit-vector helpers for the arithmetic generators
# ---------------------------------------------------------------------------
def int_to_bits(value: int, width: int) -> List[bool]:
    """Little-endian bit list of ``value`` (bit 0 first)."""
    if value < 0:
        raise ValueError("value must be non-negative")
    return [bool((value >> i) & 1) for i in range(width)]


def bits_to_int(bits: Sequence[bool]) -> int:
    """Integer from a little-endian bit list."""
    return sum((1 << i) for i, bit in enumerate(bits) if bit)


def drive_bus(prefix: str, value: int, width: int) -> Dict[str, bool]:
    """Input assignment for a bus named ``prefix0..prefix{width-1}``."""
    return {f"{prefix}{i}": bit for i, bit in enumerate(int_to_bits(value, width))}


def read_bus(values: Mapping[str, bool], prefix: str, width: int) -> int:
    """Read a bus value back out of a simulation result."""
    return bits_to_int([values[f"{prefix}{i}"] for i in range(width)])
