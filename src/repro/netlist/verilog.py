"""Minimal structural-Verilog reader and writer.

Only the subset needed to exchange technology-mapped combinational netlists
is supported: one module, ``input``/``output``/``wire`` declarations, and
primitive-style instantiations of the library cell types::

    module c17 (N1, N2, N3, N6, N7, N22, N23);
      input N1, N2, N3, N6, N7;
      output N22, N23;
      wire N10, N11, N16, N19;
      NAND2 g10 (.Y(N10), .A(N1), .B(N3));
      ...
    endmodule

Pin conventions: output pin is ``Y``; inputs are ``A``, ``B``, ``C``, ... in
order.  Positional connections are also accepted with the output first.
"""

from __future__ import annotations

import re
from typing import Dict, List

from repro.netlist.circuit import Circuit
from repro.netlist.gate import Gate

_MODULE_RE = re.compile(r"module\s+(?P<name>\w+)\s*\((?P<ports>[^)]*)\)\s*;", re.S)
_DECL_RE = re.compile(r"(?P<kind>input|output|wire)\s+(?P<nets>[^;]+);")
_INST_RE = re.compile(
    r"(?P<cell>[A-Z][A-Z0-9_]*)\s+(?P<inst>[\w\\\[\]\.]+)\s*\((?P<conns>[^;]*)\)\s*;"
)
_NAMED_CONN_RE = re.compile(r"\.(?P<pin>\w+)\s*\(\s*(?P<net>[\w\\\[\]\.]+)\s*\)")

INPUT_PIN_ORDER = "ABCDEFGHIJKLMNOP"


class VerilogParseError(Exception):
    """Raised when structural Verilog cannot be parsed."""


def _split_nets(decl: str) -> List[str]:
    return [n.strip() for n in decl.replace("\n", " ").split(",") if n.strip()]


def parse_verilog(text: str) -> Circuit:
    """Parse a single-module structural Verilog netlist into a :class:`Circuit`."""
    text = re.sub(r"//[^\n]*", "", text)
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)

    module = _MODULE_RE.search(text)
    if module is None:
        raise VerilogParseError("no module declaration found")
    name = module.group("name")

    inputs: List[str] = []
    outputs: List[str] = []
    for decl in _DECL_RE.finditer(text):
        nets = _split_nets(decl.group("nets"))
        if decl.group("kind") == "input":
            inputs.extend(nets)
        elif decl.group("kind") == "output":
            outputs.extend(nets)

    circuit = Circuit(name, primary_inputs=inputs, primary_outputs=outputs)

    body = text[module.end():]
    for inst in _INST_RE.finditer(body):
        cell = inst.group("cell")
        inst_name = inst.group("inst")
        conns = inst.group("conns")
        named = _NAMED_CONN_RE.findall(conns)
        if named:
            pins: Dict[str, str] = {pin.upper(): net for pin, net in named}
            if "Y" not in pins:
                raise VerilogParseError(
                    f"instance {inst_name!r} has no output pin .Y(...)"
                )
            output = pins.pop("Y")
            ordered = sorted(pins.items(), key=lambda kv: kv[0])
            gate_inputs = [net for _, net in ordered]
        else:
            nets = _split_nets(conns)
            if len(nets) < 2:
                raise VerilogParseError(
                    f"instance {inst_name!r} needs an output and at least one input"
                )
            output, gate_inputs = nets[0], nets[1:]
        circuit.add_gate(
            Gate(name=inst_name, cell_type=cell, inputs=gate_inputs, output=output)
        )
    return circuit


def write_verilog(circuit: Circuit) -> str:
    """Serialise ``circuit`` as single-module structural Verilog."""
    ports = circuit.primary_inputs + circuit.primary_outputs
    lines = [f"module {circuit.name} ({', '.join(ports)});"]
    if circuit.primary_inputs:
        lines.append(f"  input {', '.join(circuit.primary_inputs)};")
    if circuit.primary_outputs:
        lines.append(f"  output {', '.join(circuit.primary_outputs)};")
    pis = set(circuit.primary_inputs)
    pos = set(circuit.primary_outputs)
    wires = [n for n in circuit.nets() if n not in pis and n not in pos]
    if wires:
        lines.append(f"  wire {', '.join(wires)};")
    for gate in circuit:
        conns = [f".Y({gate.output})"]
        # INPUT_PIN_ORDER lists every pin name the library could need; a
        # gate only consumes a prefix of it.
        for pin, net in zip(INPUT_PIN_ORDER, gate.inputs, strict=False):
            conns.append(f".{pin}({net})")
        lines.append(f"  {gate.cell_type} {gate.name} ({', '.join(conns)});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
