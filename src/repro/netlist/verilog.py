"""Structural-Verilog reader and writer.

The reader is a tokenizer plus recursive-descent parser producing the raw
front-end IR (:class:`~repro.netlist.ast.RawNetlist`); the shared
elaboration + canonicalization pipeline then lowers it to a
:class:`~repro.netlist.circuit.Circuit`.  The supported subset is what is
needed to exchange technology-mapped combinational netlists, hierarchical
or flat::

    module full_adder (input a, input b, input cin,
                       output sum, output cout);
      wire n1, n2, n3;
      XOR2 g1 (.Y(n1), .A(a), .B(b));
      ...
    endmodule

    module top (a, b, y);
      input [3:0] a, b;
      output [3:0] y;
      full_adder u0 (.a(a[0]), .b(b[0]), .cin(zero), .sum(y[0]), ...);
      assign y_alias = y[3];
    endmodule

Supported: multiple modules with instantiation (named or positional port
maps), ANSI and non-ANSI port declarations, vector ports/wires with
``[msb:lsb]`` ranges, bit- and part-selects, concatenations,
``parameter`` declarations with ``#(.N(v))`` overrides and parameterized
ranges, ``assign`` net aliases, ``//`` and ``/* */`` comments, and escaped
identifiers.  Not supported: behavioural code, ``always``/``initial``
blocks, expressions other than net selections/concatenations, constant
literals on nets, and sequential primitives.

Pin conventions for leaf (library) cells: output pin is ``Y``; inputs are
``A``, ``B``, ``C``, ... in order.  Positional connections are accepted
with the output first.

All parse errors carry the 1-based line/column and the offending token.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.netlist.ast import (
    INPUT_PIN_ORDER,
    Concat,
    FrontendError,
    Id,
    IndexExpr,
    NetExpr,
    RawInstance,
    RawModule,
    RawNetlist,
    Select,
    SourceLoc,
    format_expr,
    format_index,
)
from repro.netlist.circuit import Circuit
from repro.netlist.elaborate import elaborate

__all__ = [
    "INPUT_PIN_ORDER",
    "VerilogParseError",
    "parse_verilog",
    "parse_verilog_file",
    "parse_verilog_raw",
    "write_verilog",
    "write_verilog_netlist",
]


class VerilogParseError(FrontendError):
    """Raised when structural Verilog cannot be parsed or elaborated."""


_KEYWORDS = frozenset(
    {"module", "endmodule", "input", "output", "inout", "wire", "assign",
     "parameter"}
)

_TOKEN_RE = re.compile(
    r"""(?P<ws>\s+)
      | (?P<comment>//[^\n]*|/\*.*?\*/)
      | (?P<escaped>\\\S+)
      | (?P<id>[A-Za-z_$][\w$]*(?:\.[A-Za-z_$][\w$]*)*)
      | (?P<number>\d+)
      | (?P<symbol>[()\[\]{},;:=\#.+\-*/%])
    """,
    re.VERBOSE | re.DOTALL,
)


class _Token:
    __slots__ = ("kind", "value", "line", "col")

    def __init__(self, kind: str, value: str, line: int, col: int) -> None:
        self.kind = kind  # "id" | "number" | "symbol" | "eof"
        self.value = value
        self.line = line
        self.col = col

    @property
    def loc(self) -> SourceLoc:
        return SourceLoc(self.line, self.col)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"_Token({self.kind}, {self.value!r}, {self.line}:{self.col})"


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos, line, col = 0, 1, 1
    end = len(text)
    while pos < end:
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise VerilogParseError(
                "unexpected character", SourceLoc(line, col), token=text[pos]
            )
        kind = match.lastgroup
        value = match.group()
        if kind == "escaped":
            tokens.append(_Token("id", value, line, col))
        elif kind in ("id", "number", "symbol"):
            tokens.append(_Token(kind, value, line, col))
        # advance line/col over the consumed text (comments/ws may span lines)
        newlines = value.count("\n")
        if newlines:
            line += newlines
            col = len(value) - value.rfind("\n")
        else:
            col += len(value)
        pos = match.end()
    tokens.append(_Token("eof", "", line, col))
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: List[_Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token-stream helpers ------------------------------------------
    def peek(self, offset: int = 0) -> _Token:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def next(self) -> _Token:
        tok = self._tokens[self._pos]
        if tok.kind != "eof":
            self._pos += 1
        return tok

    def at_symbol(self, value: str) -> bool:
        tok = self.peek()
        return tok.kind == "symbol" and tok.value == value

    def at_keyword(self, value: str) -> bool:
        tok = self.peek()
        return tok.kind == "id" and tok.value == value

    def accept_symbol(self, value: str) -> bool:
        if self.at_symbol(value):
            self.next()
            return True
        return False

    def expect_symbol(self, value: str, what: str = "") -> _Token:
        tok = self.next()
        if tok.kind != "symbol" or tok.value != value:
            context = f" {what}" if what else ""
            raise VerilogParseError(
                f"expected {value!r}{context}", tok.loc,
                token=tok.value or "<eof>",
            )
        return tok

    def expect_id(self, what: str = "identifier") -> _Token:
        tok = self.next()
        if tok.kind != "id" or tok.value in _KEYWORDS:
            raise VerilogParseError(
                f"expected {what}", tok.loc, token=tok.value or "<eof>"
            )
        return tok

    def fail(self, message: str) -> "VerilogParseError":
        tok = self.peek()
        return VerilogParseError(message, tok.loc, token=tok.value or "<eof>")

    # -- grammar -------------------------------------------------------
    def parse_netlist(self) -> RawNetlist:
        netlist = RawNetlist()
        if self.peek().kind == "eof" or not self.at_keyword("module"):
            raise VerilogParseError(
                "no module declaration found", self.peek().loc,
                token=self.peek().value or "<eof>",
            )
        while self.peek().kind != "eof":
            if not self.at_keyword("module"):
                raise self.fail("expected 'module'")
            netlist.add_module(self.parse_module())
        return netlist

    def parse_module(self) -> RawModule:
        kw = self.next()  # 'module'
        name_tok = self.expect_id("module name")
        module = RawModule(name=name_tok.value, loc=kw.loc)

        if self.accept_symbol("#"):
            self.expect_symbol("(", "after '#'")
            self._parse_param_decls(module, terminator=")")
            self.expect_symbol(")", "closing the parameter list")

        self.expect_symbol("(", "opening the port list")
        self._parse_port_list(module)
        self.expect_symbol(")", "closing the port list")
        self.expect_symbol(";", "after the port list")

        while not self.at_keyword("endmodule"):
            tok = self.peek()
            if tok.kind == "eof":
                raise self.fail(f"unterminated module {module.name!r}: "
                                f"missing 'endmodule'")
            if tok.value in ("input", "output"):
                self._parse_direction_decl(module)
            elif tok.value == "wire":
                self._parse_wire_decl(module)
            elif tok.value == "parameter":
                self.next()
                self._parse_param_decls(module, terminator=";")
                self.expect_symbol(";", "after parameter declaration")
            elif tok.value == "assign":
                self._parse_assign(module)
            elif tok.value == "inout":
                raise self.fail("'inout' ports are not supported")
            elif tok.kind == "id":
                module.add_instance(self._parse_instance())
            else:
                raise self.fail("expected a declaration, assign, instance "
                                "or 'endmodule'")
        self.next()  # 'endmodule'
        return module

    def _parse_param_decls(self, module: RawModule, terminator: str) -> None:
        while True:
            if self.at_keyword("parameter"):
                self.next()
            name = self.expect_id("parameter name")
            self.expect_symbol("=", f"after parameter {name.value!r}")
            module.params[name.value] = self._parse_index_expr()
            if not self.accept_symbol(","):
                break
        if not self.at_symbol(terminator):
            raise self.fail(f"expected {terminator!r} after parameters")

    def _parse_range(self) -> tuple:
        """``[msb:lsb]`` -> (msb, lsb) index expressions."""
        self.expect_symbol("[")
        msb = self._parse_index_expr()
        self.expect_symbol(":", "in range")
        lsb = self._parse_index_expr()
        self.expect_symbol("]", "closing range")
        return msb, lsb

    def _parse_decl_name(self) -> str:
        """A declared name, allowing a literal ``[int]`` suffix.

        Our own writer emits bit-blasted nets whose *names* contain
        brackets (``a[3]``); accepting the literal form keeps flattened
        output re-parseable.
        """
        name = self.expect_id("net name").value
        while (
            self.at_symbol("[")
            and self.peek(1).kind == "number"
            and self.peek(2).kind == "symbol"
            and self.peek(2).value == "]"
        ):
            self.next()
            idx = self.next().value
            self.next()
            name += f"[{idx}]"
        return name

    def _parse_port_list(self, module: RawModule) -> None:
        if self.at_symbol(")"):
            return
        direction: Optional[str] = None
        rng: Optional[tuple] = None
        while True:
            tok = self.peek()
            if tok.value in ("input", "output"):
                direction = tok.value
                self.next()
                rng = self._parse_range() if self.at_symbol("[") else None
            elif tok.value == "inout":
                raise self.fail("'inout' ports are not supported")
            loc = self.peek().loc
            name = self._parse_decl_name()
            if direction is not None:  # ANSI style
                msb, lsb = rng if rng is not None else (None, None)
                module.add_port(name, direction, msb, lsb, loc=loc)
            else:  # non-ANSI: direction comes from body declarations
                if name in module.port_order:
                    raise VerilogParseError(
                        f"port {name!r} listed twice", loc, token=name
                    )
                module.port_order.append(name)
            if not self.accept_symbol(","):
                break

    def _parse_direction_decl(self, module: RawModule) -> None:
        direction = self.next().value  # 'input' | 'output'
        rng = self._parse_range() if self.at_symbol("[") else None
        msb, lsb = rng if rng is not None else (None, None)
        while True:
            loc = self.peek().loc
            name = self._parse_decl_name()
            module.add_port(name, direction, msb, lsb, loc=loc)
            if not self.accept_symbol(","):
                break
        self.expect_symbol(";", f"after {direction} declaration")

    def _parse_wire_decl(self, module: RawModule) -> None:
        self.next()  # 'wire'
        rng = self._parse_range() if self.at_symbol("[") else None
        msb, lsb = rng if rng is not None else (None, None)
        while True:
            loc = self.peek().loc
            name = self._parse_decl_name()
            module.add_wire(name, msb, lsb, loc=loc)
            if not self.accept_symbol(","):
                break
        self.expect_symbol(";", "after wire declaration")

    def _parse_assign(self, module: RawModule) -> None:
        loc = self.next().loc  # 'assign'
        lhs = self._parse_net_expr()
        self.expect_symbol("=", "in assign")
        rhs = self._parse_net_expr()
        self.expect_symbol(";", "after assign")
        module.add_assign(lhs, rhs, loc=loc)

    def _parse_instance(self) -> RawInstance:
        target_tok = self.expect_id("cell or module name")
        overrides: Dict[str, IndexExpr] = {}
        if self.accept_symbol("#"):
            self.expect_symbol("(", "after '#'")
            while not self.at_symbol(")"):
                self.expect_symbol(".", "in parameter override")
                pname = self.expect_id("parameter name").value
                self.expect_symbol("(", f"after .{pname}")
                overrides[pname] = self._parse_index_expr()
                self.expect_symbol(")", f"closing .{pname}(...)")
                if not self.accept_symbol(","):
                    break
            self.expect_symbol(")", "closing the parameter overrides")
        name_tok = self.expect_id("instance name")
        loc = name_tok.loc
        self.expect_symbol("(", f"opening connections of {name_tok.value!r}")

        named: Optional[Dict[str, Optional[NetExpr]]] = None
        positional: Optional[List[NetExpr]] = None
        if self.at_symbol(")"):
            positional = []
        elif self.at_symbol("."):
            named = {}
            while True:
                self.expect_symbol(".", "in named connection")
                pin = self.expect_id("pin name").value
                if pin in named:
                    raise VerilogParseError(
                        f"pin {pin!r} connected twice on instance "
                        f"{name_tok.value!r}", self.peek().loc, token=pin,
                    )
                self.expect_symbol("(", f"after .{pin}")
                named[pin] = None if self.at_symbol(")") \
                    else self._parse_net_expr()
                self.expect_symbol(")", f"closing .{pin}(...)")
                if not self.accept_symbol(","):
                    break
        else:
            positional = [self._parse_net_expr()]
            while self.accept_symbol(","):
                positional.append(self._parse_net_expr())
        self.expect_symbol(")", f"closing connections of {name_tok.value!r}")
        self.expect_symbol(";", "after instantiation")
        return RawInstance(
            name=name_tok.value,
            target=target_tok.value,
            named=named,
            positional=positional,
            param_overrides=overrides,
            loc=loc,
        )

    # -- expressions ---------------------------------------------------
    def _parse_net_expr(self) -> NetExpr:
        if self.accept_symbol("{"):
            parts = [self._parse_net_expr()]
            while self.accept_symbol(","):
                parts.append(self._parse_net_expr())
            self.expect_symbol("}", "closing concatenation")
            return Concat(tuple(parts))
        tok = self.peek()
        if tok.kind == "number":
            raise self.fail("constant literals are not supported on nets")
        name = self.expect_id("net name").value
        if self.at_symbol("["):
            self.next()
            msb = self._parse_index_expr()
            lsb = None
            if self.accept_symbol(":"):
                lsb = self._parse_index_expr()
            self.expect_symbol("]", "closing select")
            return Select(name, msb, lsb)
        return Id(name)

    def _parse_index_expr(self, min_prec: int = 0) -> IndexExpr:
        left = self._parse_index_primary()
        while True:
            tok = self.peek()
            if tok.kind != "symbol":
                return left
            prec = {"+": 1, "-": 1, "*": 2, "/": 2, "%": 2}.get(tok.value)
            if prec is None or prec < min_prec:
                return left
            op = self.next().value
            right = self._parse_index_expr(prec + 1)
            left = (op, left, right)

    def _parse_index_primary(self) -> IndexExpr:
        tok = self.next()
        if tok.kind == "number":
            return int(tok.value)
        if tok.kind == "id" and tok.value not in _KEYWORDS:
            return tok.value  # parameter reference
        if tok.kind == "symbol" and tok.value == "-":
            return ("neg", self._parse_index_primary())
        if tok.kind == "symbol" and tok.value == "(":
            inner = self._parse_index_expr()
            self.expect_symbol(")", "closing parenthesized expression")
            return inner
        raise VerilogParseError(
            "expected an index expression", tok.loc, token=tok.value or "<eof>"
        )


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------
def parse_verilog_raw(text: str) -> RawNetlist:
    """Parse structural Verilog into the raw front-end IR (no elaboration)."""
    return _Parser(_tokenize(text)).parse_netlist()


def parse_verilog(text: str, top: Optional[str] = None) -> Circuit:
    """Parse structural Verilog and elaborate it into a :class:`Circuit`.

    Hierarchy is flattened, buses are bit-blasted and ``assign`` aliases are
    canonicalized; ``top`` selects the root module when the file holds more
    than one (default: the unique module no other module instantiates).
    """
    raw = parse_verilog_raw(text)
    try:
        return elaborate(raw, top=top)
    except VerilogParseError:
        raise
    except FrontendError as exc:
        raise VerilogParseError(exc.message, exc.loc, exc.token) from exc


def parse_verilog_file(path: Union[str, Path],
                       top: Optional[str] = None) -> Circuit:
    """Parse a structural-Verilog file from disk."""
    return parse_verilog(Path(path).read_text(), top=top)


def write_verilog(circuit: Circuit) -> str:
    """Serialise ``circuit`` as single-module structural Verilog."""
    ports = circuit.primary_inputs + circuit.primary_outputs
    lines = [f"module {circuit.name} ({', '.join(ports)});"]
    if circuit.primary_inputs:
        lines.append(f"  input {', '.join(circuit.primary_inputs)};")
    if circuit.primary_outputs:
        lines.append(f"  output {', '.join(circuit.primary_outputs)};")
    pis = set(circuit.primary_inputs)
    pos = set(circuit.primary_outputs)
    wires = [n for n in circuit.nets() if n not in pis and n not in pos]
    if wires:
        lines.append(f"  wire {', '.join(wires)};")
    for gate in circuit:
        conns = [f".Y({gate.output})"]
        # INPUT_PIN_ORDER lists every pin name the library could need; a
        # gate only consumes a prefix of it.
        for pin, net in zip(INPUT_PIN_ORDER, gate.inputs, strict=False):
            conns.append(f".{pin}({net})")
        lines.append(f"  {gate.cell_type} {gate.name} ({', '.join(conns)});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def _format_range(msb: Optional[IndexExpr], lsb: Optional[IndexExpr]) -> str:
    if msb is None:
        return ""
    low = format_index(lsb) if lsb is not None else format_index(msb)
    return f"[{format_index(msb)}:{low}] "


def write_verilog_netlist(netlist: RawNetlist) -> str:
    """Serialise a (possibly hierarchical) raw netlist back to Verilog.

    The output re-parses with :func:`parse_verilog_raw` to an equivalent
    netlist: module order, port order, declarations, parameter defaults,
    instances (named or positional) and assigns are all preserved.
    """
    lines: List[str] = []
    for module in netlist.modules.values():
        lines.append(f"module {module.name} ({', '.join(module.port_order)});")
        for pname, default in module.params.items():
            lines.append(f"  parameter {pname} = {format_index(default)};")
        for direction in ("input", "output"):
            for port in module.ports.values():
                if port.direction == direction:
                    rng = _format_range(port.msb, port.lsb)
                    lines.append(f"  {direction} {rng}{port.name};")
        for net in module.nets.values():
            rng = _format_range(net.msb, net.lsb)
            lines.append(f"  wire {rng}{net.name};")
        for assign in module.assigns:
            lines.append(
                f"  assign {format_expr(assign.lhs)} = "
                f"{format_expr(assign.rhs)};"
            )
        for inst in module.instances:
            prefix = f"  {inst.target} "
            if inst.param_overrides:
                overrides = ", ".join(
                    f".{k}({format_index(v)})"
                    for k, v in inst.param_overrides.items()
                )
                prefix += f"#({overrides}) "
            if inst.named is not None:
                conns = ", ".join(
                    f".{pin}({format_expr(expr)})" if expr is not None
                    else f".{pin}()"
                    for pin, expr in inst.named.items()
                )
            else:
                conns = ", ".join(format_expr(e)
                                  for e in (inst.positional or []))
            lines.append(f"{prefix}{inst.name} ({conns});")
        lines.append("endmodule")
        lines.append("")
    return "\n".join(lines)
