"""Array-native circuit IR shared by every analysis engine.

See :mod:`repro.ir.compiled` for the lowering; consumers get at it through
:meth:`Circuit.compiled() <repro.netlist.circuit.Circuit.compiled>`.
"""

from repro.ir.compiled import CompiledCircuit, LevelBlock, lower_circuit

__all__ = ["CompiledCircuit", "LevelBlock", "lower_circuit"]
