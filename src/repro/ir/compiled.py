"""The compiled array-native circuit IR.

Every analysis engine in the reproduction used to re-derive its own
levelized schedule over per-gate Python objects (three near-identical
``_VectorPlan`` copies lived in FASSTA, FULLSSTA and the criticality
analyzer).  :class:`CompiledCircuit` promotes that schedule into a single
structure-of-arrays lowering of a :class:`~repro.netlist.circuit.Circuit`
that *every* consumer shares:

* **integer ids** — gates and nets are numbered once; ``gate_names`` /
  ``net_names`` and the inverse ``gate_index`` / ``net_index`` maps are the
  only places names appear.  Gate ids are assigned in level-major order
  (level 1 first, topological order within a level), so the logic levels
  are contiguous id ranges described by ``level_offsets`` instead of
  per-level Python lists.
* **net slots** — primary inputs occupy slots ``[0, num_pis)``, gate
  outputs ``[num_pis, num_pis + num_gates)`` in gate-id order, and floating
  nets (read by some gate but neither driven nor declared primary inputs)
  fill the tail.  ``boundary_mask`` marks every slot whose arrival time is
  a boundary condition (primary inputs *and* floating nets — both start at
  zero arrival unless a caller overrides them); ``floating_mask`` isolates
  just the floating tail.
* **CSR adjacency** — ``fanin_indptr`` / ``fanin_slots`` give each gate's
  input net slots in pin order; ``fanout_indptr`` / ``fanout_gates`` give,
  per net slot, the gate ids reading that net.  Dirty-cone propagation
  (incremental re-analysis) is a breadth-first sweep over the fanout CSR.
  ``fanin_matrix`` is the dense companion: ``(num_gates, max_fanin)`` with
  invalid positions pointing at the sentinel slot ``num_nets``, so engines
  that park ``-inf`` there (the Monte-Carlo timers) fold a whole level with
  a single gather + ``max`` reduction.
* **per-gate arrays** — ``cell_type_ids`` (into the ``cell_types``
  vocabulary), ``size_index`` and ``fanin_counts``.  ``size_index`` is the
  only mutable array: size-only changes refresh it in place (driven by the
  circuit's size-change log) without recompiling the structure.
* **padded level blocks** — for the vectorized engines each level also
  carries a padded ``(gates, max_fanin)`` input-slot matrix plus validity
  mask, the exact layout the old ``_VectorPlan`` provided.

Lowering happens once per ``structure_version`` through
:meth:`Circuit.compiled() <repro.netlist.circuit.Circuit.compiled>`, which
caches the instance on the circuit itself — FASSTA, FULLSSTA, DSTA, the
Monte-Carlo timers, the criticality analyzer and incremental re-analysis
all see the *same* :class:`CompiledCircuit` object for a given structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, List, Sequence, Tuple

import numpy as np
from numpy.typing import NDArray

IntArray = NDArray[np.intp]
BoolArray = NDArray[np.bool_]

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (circuit imports us)
    from repro.netlist.circuit import Circuit


@dataclass
class LevelBlock:
    """One logic level of the compiled schedule (a contiguous gate-id range).

    ``in_slots`` is padded to the level's maximum fanin; ``in_mask`` marks
    the valid pin positions.  Pin order is preserved, so left-to-right folds
    over the columns reproduce the scalar engines' fold order exactly.
    """

    level: int
    names: List[str]
    gate_ids: IntArray  # (G,) — contiguous: arange(start, stop)
    out_slots: IntArray  # (G,) — net slot written by each gate
    in_slots: IntArray  # (G, F) — input net slots, pin order, padded
    in_mask: BoolArray  # (G, F) — valid pin positions


class CompiledCircuit:
    """Array-native lowering of one circuit structure.

    Build through :func:`lower_circuit` (or, almost always, through the
    caching :meth:`Circuit.compiled` accessor rather than directly).
    """

    __slots__ = (
        "name",
        "structure_version",
        "num_gates",
        "num_nets",
        "num_pis",
        "gate_names",
        "gate_index",
        "net_names",
        "net_index",
        "gate_output_slot",
        "gate_level",
        "level_values",
        "level_offsets",
        "levels",
        "fanin_indptr",
        "fanin_slots",
        "fanin_counts",
        "fanin_matrix",
        "fanout_indptr",
        "fanout_gates",
        "cell_types",
        "cell_type_ids",
        "size_index",
        "boundary_mask",
        "floating_mask",
        "floating",
    )

    def __init__(
        self,
        name: str,
        structure_version: int,
        gate_names: List[str],
        net_names: List[str],
        num_pis: int,
        gate_output_slot: IntArray,
        gate_level: IntArray,
        level_values: List[int],
        level_offsets: IntArray,
        fanin_indptr: IntArray,
        fanin_slots: IntArray,
        fanout_indptr: IntArray,
        fanout_gates: IntArray,
        cell_types: List[str],
        cell_type_ids: IntArray,
        size_index: IntArray,
    ) -> None:
        self.name = name
        self.structure_version = structure_version
        self.num_gates = len(gate_names)
        self.num_nets = len(net_names)
        self.num_pis = num_pis
        self.gate_names = gate_names
        self.gate_index = {n: i for i, n in enumerate(gate_names)}
        self.net_names = net_names
        self.net_index = {n: i for i, n in enumerate(net_names)}
        self.gate_output_slot = gate_output_slot
        self.gate_level = gate_level
        self.level_values = level_values
        self.level_offsets = level_offsets
        self.fanin_indptr = fanin_indptr
        self.fanin_slots = fanin_slots
        self.fanin_counts = np.diff(fanin_indptr)
        # Globally padded fanin matrix: (num_gates, max_fanin), invalid
        # positions point at the sentinel slot ``num_nets``.  Consumers that
        # keep a ``-inf`` row there can fold a whole level with one gather
        # and one ``max`` reduction — no validity mask needed, because
        # ``max(x, -inf) == x`` exactly.
        max_fanin = int(self.fanin_counts.max()) if self.num_gates else 0
        self.fanin_matrix = np.full(
            (self.num_gates, max_fanin), self.num_nets, dtype=np.intp
        )
        if self.num_gates:
            # Scatter the CSR payload in one shot: row gid's first
            # fanin_counts[gid] columns are valid, and fanin_slots is
            # already row-major in that same order.
            valid = (
                np.arange(max_fanin, dtype=np.intp)[None, :]
                < self.fanin_counts[:, None]
            )
            self.fanin_matrix[valid] = fanin_slots
        self.fanout_indptr = fanout_indptr
        self.fanout_gates = fanout_gates
        self.cell_types = cell_types
        self.cell_type_ids = cell_type_ids
        self.size_index = size_index

        floating_start = num_pis + self.num_gates
        self.boundary_mask = np.zeros(self.num_nets, dtype=bool)
        self.boundary_mask[:num_pis] = True
        self.boundary_mask[floating_start:] = True
        self.floating_mask = np.zeros(self.num_nets, dtype=bool)
        self.floating_mask[floating_start:] = True
        self.floating: FrozenSet[str] = frozenset(net_names[floating_start:])

        self.levels = self._build_level_blocks()

    # ------------------------------------------------------------------
    @property
    def num_slots(self) -> int:
        """Alias for :attr:`num_nets` (one arrival-state slot per net)."""
        return self.num_nets

    @property
    def num_levels(self) -> int:
        return len(self.level_values)

    # ------------------------------------------------------------------
    def _build_level_blocks(self) -> List[LevelBlock]:
        blocks: List[LevelBlock] = []
        for li, level in enumerate(self.level_values):
            start = int(self.level_offsets[li])
            stop = int(self.level_offsets[li + 1])
            gate_ids = np.arange(start, stop, dtype=np.intp)
            names = self.gate_names[start:stop]
            out_slots = self.gate_output_slot[start:stop]
            counts = self.fanin_counts[start:stop]
            max_fanin = int(counts.max()) if len(counts) else 0
            in_slots = np.zeros((stop - start, max_fanin), dtype=np.intp)
            in_mask = (
                np.arange(max_fanin, dtype=np.intp)[None, :] < counts[:, None]
            )
            # Gate ids in a level are contiguous, so their CSR span is one
            # contiguous, row-major slice of fanin_slots.
            span = self.fanin_slots[
                self.fanin_indptr[start]: self.fanin_indptr[stop]
            ]
            in_slots[in_mask] = span
            blocks.append(
                LevelBlock(
                    level=level,
                    names=names,
                    gate_ids=gate_ids,
                    out_slots=out_slots,
                    in_slots=in_slots,
                    in_mask=in_mask,
                )
            )
        return blocks

    # ------------------------------------------------------------------
    def gate_fanin_slots(self, gate_id: int) -> IntArray:
        """Input net slots of one gate, in pin order."""
        return self.fanin_slots[
            self.fanin_indptr[gate_id]: self.fanin_indptr[gate_id + 1]
        ]

    def net_fanout_gates(self, slot: int) -> IntArray:
        """Gate ids reading the net in ``slot``."""
        return self.fanout_gates[
            self.fanout_indptr[slot]: self.fanout_indptr[slot + 1]
        ]

    # ------------------------------------------------------------------
    def fanout_cone(self, seed_gate_ids: Iterable[int]) -> IntArray:
        """Seed gates plus their transitive fanout, topologically sorted.

        Breadth-first reachability over the fanout CSR.  The returned array
        is ascending, and because gate ids are level-major, ascending id
        order is a valid topological order — callers can recompute the cone
        front to back without consulting the netlist.
        """
        mark = np.zeros(self.num_gates, dtype=bool)
        stack: List[int] = []
        for gid in seed_gate_ids:
            if not mark[gid]:
                mark[gid] = True
                stack.append(int(gid))
        while stack:
            gid = stack.pop()
            slot = self.gate_output_slot[gid]
            for nxt in self.net_fanout_gates(int(slot)):
                if not mark[nxt]:
                    mark[nxt] = True
                    stack.append(int(nxt))
        return np.nonzero(mark)[0]

    # ------------------------------------------------------------------
    def refresh_sizes(self, circuit: "Circuit", gate_names: Sequence[str]) -> None:
        """Refresh ``size_index`` in place for the named gates.

        Called by :meth:`Circuit.compiled` with the tail of the size-change
        log; unknown names (gates since removed — which would also have
        bumped ``structure_version`` and forced a relower) are skipped.
        """
        for name in gate_names:
            gid = self.gate_index.get(name)
            if gid is not None:
                self.size_index[gid] = circuit.gate(name).size_index

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return (
            f"CompiledCircuit({self.name!r}, v{self.structure_version}, "
            f"gates={self.num_gates}, nets={self.num_nets}, "
            f"levels={self.num_levels})"
        )


def lower_circuit(circuit: "Circuit") -> CompiledCircuit:
    """Lower ``circuit`` to a fresh :class:`CompiledCircuit`.

    Most callers should use :meth:`Circuit.compiled`, which caches the
    result per structure version and keeps the size array fresh.
    """
    levels_map = circuit.levels()
    by_level: Dict[int, List[str]] = {}
    # The one sanctioned netlist walk: this IS the lowering every engine
    # shares.  repro-lint: allow=RL001
    for name in circuit.topological_order():
        by_level.setdefault(levels_map[name], []).append(name)
    level_values = sorted(by_level)

    gate_names: List[str] = []
    level_offsets = np.zeros(len(level_values) + 1, dtype=np.intp)
    for li, level in enumerate(level_values):
        gate_names.extend(by_level[level])
        level_offsets[li + 1] = len(gate_names)

    num_gates = len(gate_names)
    # One dict lookup per gate for the whole lowering, not one per loop.
    all_gates = circuit.gates
    gate_objs = [all_gates[name] for name in gate_names]

    gate_level = np.zeros(num_gates, dtype=np.intp)
    for gid, name in enumerate(gate_names):
        gate_level[gid] = levels_map[name]

    # Net slots: primary inputs, then gate outputs (gate-id order), then
    # floating nets in first-seen (gate-id, pin) order.
    net_names: List[str] = list(circuit.primary_inputs)
    net_index: Dict[str, int] = {n: i for i, n in enumerate(net_names)}
    gate_output_slot = np.zeros(num_gates, dtype=np.intp)
    for gid, gate in enumerate(gate_objs):
        out = gate.output
        gate_output_slot[gid] = len(net_names)
        net_index[out] = len(net_names)
        net_names.append(out)
    for gate in gate_objs:
        for net in gate.inputs:
            if net not in net_index:
                net_index[net] = len(net_names)
                net_names.append(net)

    # Fanin CSR (gate -> input net slots, pin order).
    fanin_indptr = np.zeros(num_gates + 1, dtype=np.intp)
    flat_fanin: List[int] = []
    for gid, gate in enumerate(gate_objs):
        for net in gate.inputs:
            flat_fanin.append(net_index[net])
        fanin_indptr[gid + 1] = len(flat_fanin)
    fanin_slots = np.array(flat_fanin, dtype=np.intp)

    # Fanout CSR (net slot -> reader gate ids, load order).
    num_nets = len(net_names)
    fanout_indptr = np.zeros(num_nets + 1, dtype=np.intp)
    flat_fanout: List[int] = []
    gate_index = {n: i for i, n in enumerate(gate_names)}
    for slot, net in enumerate(net_names):
        for load_name in circuit.load_names(net):
            flat_fanout.append(gate_index[load_name])
        fanout_indptr[slot + 1] = len(flat_fanout)
    fanout_gates = np.array(flat_fanout, dtype=np.intp)

    # Per-gate cell/size arrays.
    cell_types: List[str] = []
    cell_vocab: Dict[str, int] = {}
    cell_type_ids = np.zeros(num_gates, dtype=np.intp)
    size_index = np.zeros(num_gates, dtype=np.intp)
    for gid, gate in enumerate(gate_objs):
        cid = cell_vocab.get(gate.cell_type)
        if cid is None:
            cid = len(cell_types)
            cell_vocab[gate.cell_type] = cid
            cell_types.append(gate.cell_type)
        cell_type_ids[gid] = cid
        size_index[gid] = gate.size_index

    return CompiledCircuit(
        name=circuit.name,
        structure_version=circuit.structure_version,
        gate_names=gate_names,
        net_names=net_names,
        num_pis=len(circuit.primary_inputs),
        gate_output_slot=gate_output_slot,
        gate_level=gate_level,
        level_values=level_values,
        level_offsets=level_offsets,
        fanin_indptr=fanin_indptr,
        fanin_slots=fanin_slots,
        fanout_indptr=fanout_indptr,
        fanout_gates=fanout_gates,
        cell_types=cell_types,
        cell_type_ids=cell_type_ids,
        size_index=size_index,
    )


__all__: Tuple[str, ...] = ("CompiledCircuit", "LevelBlock", "lower_circuit")
